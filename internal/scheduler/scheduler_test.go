package scheduler

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nexus/internal/profiler"
)

// pointsFromKnots builds a measured latency table for batch sizes 1..max by
// linear interpolation between (batch, latency) knots, anchored at a
// pseudo-knot (0, beta0) so small batches have decreasing per-item cost.
func pointsFromKnots(beta0 time.Duration, knots map[int]time.Duration, max int) []time.Duration {
	pts := make([]time.Duration, max)
	prevB, prevL := 0, beta0
	for b := 1; b <= max; b++ {
		// Find the next knot at or beyond b.
		nextB, nextL := -1, time.Duration(0)
		for kb, kl := range knots {
			if kb >= b && (nextB == -1 || kb < nextB) {
				nextB, nextL = kb, kl
			}
		}
		if nextB == -1 { // beyond last knot: keep last slope
			pts[b-1] = pts[b-2] + (pts[b-2] - pts[b-3])
			continue
		}
		if l, ok := knots[b]; ok {
			pts[b-1] = l
			prevB, prevL = b, l
			continue
		}
		frac := float64(b-prevB) / float64(nextB-prevB)
		pts[b-1] = prevL + time.Duration(frac*float64(nextL-prevL))
	}
	return pts
}

// table2Profiles builds the batching profiles of Table 2 (models A, B, C).
func table2Profiles(t *testing.T) map[string]*profiler.Profile {
	t.Helper()
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	base := func(id string) *profiler.Profile {
		return &profiler.Profile{ModelID: id, GPU: profiler.GTX1080Ti, Alpha: time.Millisecond, Beta: time.Millisecond, MaxBatch: 16}
	}
	pa := base("A").WithPoints(pointsFromKnots(ms(40), map[int]time.Duration{4: ms(50), 8: ms(75), 16: ms(100)}, 16))
	pb := base("B").WithPoints(pointsFromKnots(ms(30), map[int]time.Duration{4: ms(50), 8: ms(90), 16: ms(125)}, 16))
	pc := base("C").WithPoints(pointsFromKnots(ms(40), map[int]time.Duration{4: ms(60), 8: ms(95), 16: ms(125)}, 16))
	for _, p := range []*profiler.Profile{pa, pb, pc} {
		if err := p.Validate(); err != nil {
			t.Fatalf("table 2 profile invalid: %v", err)
		}
	}
	return map[string]*profiler.Profile{"A": pa, "B": pb, "C": pc}
}

func table2Sessions(ra, rb, rc float64) []Session {
	return []Session{
		{ID: "sA", ModelID: "A", SLO: 200 * time.Millisecond, Rate: ra},
		{ID: "sB", ModelID: "B", SLO: 250 * time.Millisecond, Rate: rb},
		{ID: "sC", ModelID: "C", SLO: 250 * time.Millisecond, Rate: rc},
	}
}

// TestTable2Saturate reproduces §4.1's saturated-workload analysis: max
// batch 16 for all three models, throughputs 160/128/128 req/s per GPU.
func TestTable2Saturate(t *testing.T) {
	profiles := table2Profiles(t)
	cases := []struct {
		model string
		slo   time.Duration
		wantB int
		wantT float64
	}{
		{"A", 200 * time.Millisecond, 16, 160},
		{"B", 250 * time.Millisecond, 16, 128},
		{"C", 250 * time.Millisecond, 16, 128},
	}
	for _, c := range cases {
		b := profiles[c.model].MaxBatchWithin(c.slo / 2)
		if b != c.wantB {
			t.Errorf("%s: saturate batch %d, want %d", c.model, b, c.wantB)
		}
		if tput := profiles[c.model].Throughput(b); math.Abs(tput-c.wantT) > 0.5 {
			t.Errorf("%s: throughput %.1f, want %.1f", c.model, tput, c.wantT)
		}
	}
}

// TestTable2Residual reproduces §4.1's residual-workload analysis
// (Figure 2b): A at 64 r/s batches 8 in a 125 ms duty cycle; B at 32 r/s
// fits alongside it (batch 4); C at 32 r/s does not and gets its own GPU.
func TestTable2Residual(t *testing.T) {
	profiles := table2Profiles(t)
	sessions := table2Sessions(64, 32, 32)
	plan, err := Pack(sessions, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(plan, sessions, profiles, Config{}); err != nil {
		t.Fatal(err)
	}
	if plan.GPUCount() != 2 {
		t.Fatalf("GPU count = %d, want 2 (A+B colocated, C alone)", plan.GPUCount())
	}
	find := func(sid string) *GPUPlan {
		for i := range plan.GPUs {
			for _, a := range plan.GPUs[i].Allocs {
				if a.SessionID == sid {
					return &plan.GPUs[i]
				}
			}
		}
		return nil
	}
	nodeA, nodeB, nodeC := find("sA"), find("sB"), find("sC")
	if nodeA != nodeB {
		t.Error("A and B should share a GPU")
	}
	if nodeC == nodeA {
		t.Error("C should not share A's GPU")
	}
	if nodeA.Duty != 125*time.Millisecond {
		t.Errorf("A/B duty cycle = %v, want 125ms", nodeA.Duty)
	}
	for _, a := range nodeA.Allocs {
		switch a.SessionID {
		case "sA":
			if a.Batch != 8 {
				t.Errorf("A batch = %d, want 8", a.Batch)
			}
		case "sB":
			if a.Batch != 4 {
				t.Errorf("B batch = %d, want 4", a.Batch)
			}
		}
	}
}

// TestTable2SaturatedWorkload: high rates allocate whole GPUs per §4.1.
func TestTable2SaturatedWorkload(t *testing.T) {
	profiles := table2Profiles(t)
	sessions := table2Sessions(480, 256, 128) // 3, 2, 1 full GPUs exactly
	plan, err := Pack(sessions, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(plan, sessions, profiles, Config{}); err != nil {
		t.Fatal(err)
	}
	sat := 0
	for _, g := range plan.GPUs {
		if g.Saturated {
			sat++
		}
	}
	if sat != 6 {
		t.Fatalf("saturated nodes = %d, want 6", sat)
	}
	if plan.GPUCount() != 6 {
		t.Fatalf("GPU count = %d, want 6", plan.GPUCount())
	}
}

func linearProfile(id string, alpha, beta time.Duration, maxBatch int) *profiler.Profile {
	return &profiler.Profile{
		ModelID: id, GPU: profiler.GTX1080Ti,
		Alpha: alpha, Beta: beta, MaxBatch: maxBatch,
		MemBase: 1 << 30, MemPerItem: 4 << 20,
	}
}

func TestPackInfeasibleSLO(t *testing.T) {
	profiles := map[string]*profiler.Profile{
		"m": linearProfile("m", time.Millisecond, 20*time.Millisecond, 32),
	}
	sessions := []Session{{ID: "s", ModelID: "m", SLO: 30 * time.Millisecond, Rate: 10}}
	if _, err := Pack(sessions, profiles, Config{}); err == nil {
		t.Fatal("SLO below 2*l(1) accepted")
	}
}

func TestPackUnknownModel(t *testing.T) {
	sessions := []Session{{ID: "s", ModelID: "ghost", SLO: time.Second, Rate: 10}}
	if _, err := Pack(sessions, nil, Config{}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestPackZeroRateSkipped(t *testing.T) {
	profiles := map[string]*profiler.Profile{
		"m": linearProfile("m", time.Millisecond, 10*time.Millisecond, 32),
	}
	sessions := []Session{{ID: "s", ModelID: "m", SLO: 100 * time.Millisecond, Rate: 0}}
	plan, err := Pack(sessions, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.GPUCount() != 0 {
		t.Fatalf("zero-rate session allocated %d GPUs", plan.GPUCount())
	}
}

func TestSessionValidate(t *testing.T) {
	bad := []Session{
		{ID: "", ModelID: "m", SLO: time.Second, Rate: 1},
		{ID: "s", ModelID: "", SLO: time.Second, Rate: 1},
		{ID: "s", ModelID: "m", SLO: 0, Rate: 1},
		{ID: "s", ModelID: "m", SLO: time.Second, Rate: -1},
		{ID: "s", ModelID: "m", SLO: time.Second, Rate: math.NaN()},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d: invalid session accepted: %+v", i, s)
		}
	}
}

func TestResidualBatchLowRateFallback(t *testing.T) {
	p := linearProfile("m", time.Millisecond, 10*time.Millisecond, 32)
	// 1 req/s, SLO 100ms: gathering even one request takes ~1s, so the
	// duty cycle clamps to SLO - l(1) = 89ms with batch 1.
	b, d, err := ResidualBatch(p, 100*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b != 1 || d != 89*time.Millisecond {
		t.Fatalf("got batch %d duty %v, want 1, 89ms", b, d)
	}
	// High rate: l(b) + b/1000 <= 100ms; b=32 -> 42ms+32ms=74 <= 100. MaxBatch caps.
	b, d, err = ResidualBatch(p, 100*time.Millisecond, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if b != 32 {
		t.Fatalf("high-rate batch = %d, want 32 (MaxBatch cap)", b)
	}
	if d != 32*time.Millisecond {
		t.Fatalf("duty = %v, want 32ms", d)
	}
	if _, _, err := ResidualBatch(p, 5*time.Millisecond, 1); err == nil {
		t.Fatal("SLO below l(1) accepted")
	}
	if _, _, err := ResidualBatch(p, time.Second, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestPackMemoryConstraint(t *testing.T) {
	// Two tiny-load sessions that would share a GPU, but whose models
	// cannot both fit in memory.
	profiles := map[string]*profiler.Profile{
		"m1": linearProfile("m1", time.Millisecond, 5*time.Millisecond, 32),
		"m2": linearProfile("m2", time.Millisecond, 5*time.Millisecond, 32),
	}
	sessions := []Session{
		{ID: "s1", ModelID: "m1", SLO: 500 * time.Millisecond, Rate: 20},
		{ID: "s2", ModelID: "m2", SLO: 500 * time.Millisecond, Rate: 20},
	}
	cfg := Config{}
	plan, err := Pack(sessions, profiles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.GPUCount() != 1 {
		t.Fatalf("without memory limit: %d GPUs, want 1", plan.GPUCount())
	}
	cfgMem := Config{GPUMemBytes: 1<<30 + 500<<20} // fits one model only
	plan, err = Pack(sessions, profiles, cfgMem)
	if err != nil {
		t.Fatal(err)
	}
	if plan.GPUCount() != 2 {
		t.Fatalf("with memory limit: %d GPUs, want 2", plan.GPUCount())
	}
	if err := Validate(plan, sessions, profiles, cfgMem); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadPlans(t *testing.T) {
	profiles := map[string]*profiler.Profile{
		"m": linearProfile("m", time.Millisecond, 10*time.Millisecond, 32),
	}
	sessions := []Session{{ID: "s", ModelID: "m", SLO: 100 * time.Millisecond, Rate: 100}}
	// Overcommitted duty cycle.
	bad := &Plan{GPUs: []GPUPlan{{
		ID: "n0", Duty: 10 * time.Millisecond,
		Allocs: []Alloc{{SessionID: "s", ModelID: "m", Batch: 32, Rate: 100}},
	}}}
	if Validate(bad, sessions, profiles, Config{}) == nil {
		t.Error("overcommitted plan accepted")
	}
	// SLO violation: duty + l(b) > SLO.
	bad = &Plan{GPUs: []GPUPlan{{
		ID: "n0", Duty: 95 * time.Millisecond,
		Allocs: []Alloc{{SessionID: "s", ModelID: "m", Batch: 10, Rate: 100}},
	}}}
	if Validate(bad, sessions, profiles, Config{}) == nil {
		t.Error("SLO-violating plan accepted")
	}
	// Throughput shortfall.
	bad = &Plan{GPUs: []GPUPlan{{
		ID: "n0", Duty: 50 * time.Millisecond,
		Allocs: []Alloc{{SessionID: "s", ModelID: "m", Batch: 2, Rate: 40}},
	}}}
	if Validate(bad, sessions, profiles, Config{}) == nil {
		t.Error("under-provisioned plan accepted")
	}
	// Unknown session in plan.
	bad = &Plan{GPUs: []GPUPlan{{
		ID: "n0", Duty: 50 * time.Millisecond,
		Allocs: []Alloc{{SessionID: "ghost", ModelID: "m", Batch: 2, Rate: 40}},
	}}}
	if Validate(bad, sessions, profiles, Config{}) == nil {
		t.Error("plan with unknown session accepted")
	}
}

func randomWorkload(rng *rand.Rand) ([]Session, map[string]*profiler.Profile) {
	nModels := rng.Intn(4) + 1
	profiles := make(map[string]*profiler.Profile)
	for i := 0; i < nModels; i++ {
		id := fmt.Sprintf("m%d", i)
		alpha := time.Duration(rng.Intn(2000)+200) * time.Microsecond
		beta := time.Duration(rng.Intn(20)+2) * time.Millisecond
		profiles[id] = linearProfile(id, alpha, beta, 64)
	}
	nSessions := rng.Intn(8) + 1
	sessions := make([]Session, nSessions)
	for i := range sessions {
		mid := fmt.Sprintf("m%d", rng.Intn(nModels))
		// SLO comfortably above 2*l(1) for feasibility.
		minSLO := 2 * profiles[mid].BatchLatency(1)
		slo := minSLO + time.Duration(rng.Intn(400))*time.Millisecond
		sessions[i] = Session{
			ID:      fmt.Sprintf("s%d", i),
			ModelID: mid,
			SLO:     slo,
			Rate:    float64(rng.Intn(2000)) + 0.5,
		}
	}
	return sessions, profiles
}

// Property: Pack always produces a plan that passes Validate, and never
// uses fewer GPUs than the per-session throughput lower bound
// ceil(sum R_i/T_i) from §7.4.
func TestPropertyPackValidAndAboveLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sessions, profiles := randomWorkload(rng)
		cfg := Config{GPUMemBytes: 11 << 30}
		plan, err := Pack(sessions, profiles, cfg)
		if err != nil {
			t.Logf("seed %d: pack error: %v", seed, err)
			return false
		}
		if err := Validate(plan, sessions, profiles, cfg); err != nil {
			t.Logf("seed %d: validate error: %v", seed, err)
			return false
		}
		var lower float64
		for _, s := range sessions {
			p := profiles[s.ModelID]
			b := p.MaxBatchWithin(s.SLO / 2)
			if b == 0 {
				return true // infeasible would have errored above
			}
			lower += s.Rate / p.Throughput(b)
		}
		return plan.GPUCount() >= int(math.Ceil(lower-1e-9))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging never violates SLOs — guaranteed by construction, but
// exercised here with adversarial duty-cycle mixes.
func TestPropertyMergePreservesSLO(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sessions, profiles := randomWorkload(rng)
		// Compress rates so everything is residual (forces merging).
		for i := range sessions {
			sessions[i].Rate = float64(rng.Intn(50)) + 0.5
		}
		plan, err := Pack(sessions, profiles, Config{})
		if err != nil {
			return false
		}
		return Validate(plan, sessions, profiles, Config{}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchOblivious(t *testing.T) {
	profiles := map[string]*profiler.Profile{
		"m1": linearProfile("m1", time.Millisecond, 10*time.Millisecond, 32),
		"m2": linearProfile("m2", 2*time.Millisecond, 20*time.Millisecond, 32),
	}
	sessions := []Session{
		{ID: "s1", ModelID: "m1", SLO: 100 * time.Millisecond, Rate: 600},
		{ID: "s2", ModelID: "m2", SLO: 200 * time.Millisecond, Rate: 200},
	}
	plan, err := BatchOblivious(sessions, profiles, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.GPUCount() == 0 || plan.GPUCount() > 4 {
		t.Fatalf("GPU count = %d", plan.GPUCount())
	}
	// Session rates must be fully distributed across whole-container
	// replicas, each replica on a distinct GPU.
	rateSum := map[string]float64{}
	var totalShare float64
	for _, g := range plan.GPUs {
		seen := map[string]bool{}
		for _, a := range g.Allocs {
			if seen[a.SessionID] {
				t.Fatalf("session %s has two replicas on one GPU", a.SessionID)
			}
			seen[a.SessionID] = true
			totalShare += a.Share
			rateSum[a.SessionID] += a.Rate
		}
	}
	for _, s := range sessions {
		if math.Abs(rateSum[s.ID]-s.Rate) > 1e-6 {
			t.Fatalf("session %s distributed rate %v, want %v", s.ID, rateSum[s.ID], s.Rate)
		}
	}
	if math.Abs(totalShare-4) > 1e-6 {
		t.Fatalf("total share %v, want the whole 4-GPU cluster", totalShare)
	}
	if _, err := BatchOblivious(sessions, profiles, 0, Config{}); err == nil {
		t.Fatal("zero GPUs accepted")
	}
}

func TestBatchObliviousEmpty(t *testing.T) {
	plan, err := BatchOblivious(nil, nil, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.GPUCount() != 0 {
		t.Fatal("empty workload should use no GPUs")
	}
}

func TestIncrementalStableWhenUnchanged(t *testing.T) {
	profiles := table2Profiles(t)
	sessions := table2Sessions(64, 32, 32)
	prev, err := Pack(sessions, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	next, stats, err := Incremental(prev, sessions, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(next, sessions, profiles, Config{}); err != nil {
		t.Fatal(err)
	}
	if stats.SessionsMoved != 0 || stats.NodesAdded != 0 || stats.NodesRemoved != 0 {
		t.Fatalf("unchanged workload moved things: %+v", stats)
	}
	if next.GPUCount() != prev.GPUCount() {
		t.Fatalf("GPU count changed %d -> %d", prev.GPUCount(), next.GPUCount())
	}
	// Node IDs must be preserved.
	prevIDs := map[string]bool{}
	for _, g := range prev.GPUs {
		prevIDs[g.ID] = true
	}
	for _, g := range next.GPUs {
		if !prevIDs[g.ID] {
			t.Fatalf("node ID %s not carried over", g.ID)
		}
	}
}

func TestIncrementalScaleUp(t *testing.T) {
	profiles := table2Profiles(t)
	before := table2Sessions(64, 32, 32)
	prev, err := Pack(before, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	after := table2Sessions(320, 32, 32) // A needs a saturated GPU now
	next, stats, err := Incremental(prev, after, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(next, after, profiles, Config{}); err != nil {
		t.Fatal(err)
	}
	if next.GPUCount() <= prev.GPUCount() {
		t.Fatalf("scale-up did not add GPUs: %d -> %d", prev.GPUCount(), next.GPUCount())
	}
	if stats.NodesAdded == 0 {
		t.Fatalf("expected added nodes, got %+v", stats)
	}
}

func TestIncrementalScaleDownConsolidates(t *testing.T) {
	profiles := table2Profiles(t)
	before := table2Sessions(64, 32, 32)
	prev, err := Pack(before, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Load collapses: everything should fit on one GPU.
	after := table2Sessions(8, 4, 4)
	next, _, err := Incremental(prev, after, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(next, after, profiles, Config{}); err != nil {
		t.Fatal(err)
	}
	if next.GPUCount() > prev.GPUCount() {
		t.Fatalf("scale-down grew the cluster: %d -> %d", prev.GPUCount(), next.GPUCount())
	}
	if next.GPUCount() != 1 {
		t.Fatalf("GPU count after collapse = %d, want 1", next.GPUCount())
	}
}

func TestIncrementalRemovedSession(t *testing.T) {
	profiles := table2Profiles(t)
	before := table2Sessions(64, 32, 32)
	prev, err := Pack(before, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	after := before[:2] // C disappears
	next, _, err := Incremental(prev, after, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(next, after, profiles, Config{}); err != nil {
		t.Fatal(err)
	}
	if got := next.SessionRate("sC"); got != 0 {
		t.Fatalf("removed session still served at %v", got)
	}
}

// Property: incremental scheduling from any previous plan produces a valid
// plan for the new workload.
func TestPropertyIncrementalValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sessions, profiles := randomWorkload(rng)
		cfg := Config{GPUMemBytes: 11 << 30}
		prev, err := Pack(sessions, profiles, cfg)
		if err != nil {
			return false
		}
		// Perturb rates by up to +-50%, occasionally zeroing one.
		next := make([]Session, len(sessions))
		copy(next, sessions)
		for i := range next {
			next[i].Rate *= 0.5 + rng.Float64()
			if rng.Intn(10) == 0 {
				next[i].Rate = 0
			}
		}
		plan, _, err := Incremental(prev, next, profiles, cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := Validate(plan, next, profiles, cfg); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Figure 16's headline comparison at the scheduler level: squishy packing
// needs no more GPUs than batch-oblivious allocation for mixed-SLO loads.
func TestSquishyBeatsObliviousOnGPUCount(t *testing.T) {
	profiles := map[string]*profiler.Profile{
		"inception": linearProfile("inception", 900*time.Microsecond, 7*time.Millisecond, 64),
	}
	var sessions []Session
	slos := []time.Duration{50, 100, 150, 200}
	for i := 0; i < 16; i++ {
		sessions = append(sessions, Session{
			ID:      fmt.Sprintf("s%d", i),
			ModelID: "inception",
			SLO:     slos[i%4] * time.Millisecond,
			Rate:    120,
		})
	}
	plan, err := Pack(sessions, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(plan, sessions, profiles, Config{}); err != nil {
		t.Fatal(err)
	}
	// The oblivious baseline in the paper is given a fixed cluster; here we
	// just check squishy's own count is close to the theoretical bound.
	var lower float64
	for _, s := range sessions {
		p := profiles[s.ModelID]
		b := p.MaxBatchWithin(s.SLO / 2)
		lower += s.Rate / p.Throughput(b)
	}
	if float64(plan.GPUCount()) > math.Ceil(lower)*1.5+1 {
		t.Fatalf("squishy used %d GPUs, lower bound %.1f", plan.GPUCount(), lower)
	}
}
