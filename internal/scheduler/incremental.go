package scheduler

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nexus/internal/profiler"
)

// MoveStats summarizes how much an incremental epoch disturbed the cluster.
type MoveStats struct {
	NodesKept    int // nodes whose ID survives from the previous plan
	NodesAdded   int
	NodesRemoved int
	// SessionsMoved counts session placements whose node changed (a model
	// load on a new backend).
	SessionsMoved int
}

// lowOccupancy is the consolidation threshold: shared nodes under this
// occupancy have their sessions moved elsewhere when possible ("the
// scheduler attempts to move sessions from the least utilized backends").
const lowOccupancy = 0.25

// Incremental re-schedules for new session rates while minimizing model
// movement across epochs (§6.1): existing nodes keep their sessions when
// their (re-derived) allocations still fit; overloaded nodes evict their
// cheapest sessions; underutilized nodes are drained into others and
// released; evicted and new sessions are bin-packed into whatever is left.
func Incremental(prev *Plan, sessions []Session, profiles map[string]*profiler.Profile, cfg Config) (*Plan, MoveStats, error) {
	var stats MoveStats
	byID := make(map[string]Session)
	for _, s := range sessions {
		if err := s.Validate(); err != nil {
			return nil, stats, err
		}
		byID[s.ID] = s
	}
	prevNode := make(map[string]string) // session -> shared node ID in prev

	// --- saturated nodes -------------------------------------------------
	// Recompute per-session saturation and keep as many existing saturated
	// nodes as still needed.
	prevSat := make(map[string][]GPUPlan) // session -> saturated nodes
	for _, g := range prev.GPUs {
		if len(g.Allocs) == 0 {
			continue
		}
		if g.Saturated {
			sid := g.Allocs[0].SessionID
			prevSat[sid] = append(prevSat[sid], g)
		} else {
			for _, a := range g.Allocs {
				prevNode[a.SessionID] = g.ID
			}
		}
	}
	var out []GPUPlan
	var residue []Session
	maxSeq := planMaxSeq(prev)
	newID := func() string {
		maxSeq++
		return fmt.Sprintf("n%d", maxSeq)
	}
	for _, s := range sortSessions(sessions) {
		if s.Rate == 0 {
			continue
		}
		p, ok := profiles[s.ModelID]
		if !ok {
			return nil, stats, fmt.Errorf("scheduler: no profile for model %s (session %s)", s.ModelID, s.ID)
		}
		maxLat := time.Duration(float64(s.SLO) / cfg.sloFactor())
		b := p.MaxBatchWithin(maxLat)
		if b == 0 {
			return nil, stats, fmt.Errorf("scheduler: session %s infeasible under SLO %v", s.ID, s.SLO)
		}
		t := p.Throughput(b)
		n := int(s.Rate / t)
		reuse := prevSat[s.ID]
		// Hysteresis at the dedicated/shareable boundary: keep previously
		// dedicated nodes that would remain at least half utilized, rather
		// than flapping a session between a dedicated GPU and a shared
		// duty cycle as its rate jitters (each flap reloads a model).
		dedicated := n
		remaining := s.Rate - float64(n)*t
		for dedicated < len(reuse) && remaining >= dedicatedKeepFrac*t {
			dedicated++
			if remaining > t {
				remaining -= t
			} else {
				remaining = 0
			}
		}
		serveLeft := s.Rate
		for i := 0; i < dedicated; i++ {
			serve := t
			if serve > serveLeft {
				serve = serveLeft
			}
			serveLeft -= serve
			node := GPUPlan{
				Duty:      p.BatchLatency(b),
				Saturated: true,
				Allocs:    []Alloc{{SessionID: s.ID, ModelID: s.ModelID, Batch: b, Rate: serve}},
			}
			if i < len(reuse) {
				node.ID = reuse[i].ID
				stats.NodesKept++
			} else {
				node.ID = newID()
				stats.NodesAdded++
				stats.SessionsMoved++
			}
			out = append(out, node)
		}
		if dedicated < len(reuse) {
			stats.NodesRemoved += len(reuse) - dedicated
		}
		if serveLeft > rateEpsilon {
			rs := s
			rs.Rate = serveLeft
			residue = append(residue, rs)
		}
	}

	// --- shared nodes ----------------------------------------------------
	// Keep each residual session on its previous shared node when that node
	// can still be rebuilt feasibly; overloaded nodes evict lowest-occupancy
	// sessions first.
	residueByNode := make(map[string][]Session)
	var pending []Session
	for _, s := range residue {
		if nid, ok := prevNode[s.ID]; ok {
			residueByNode[nid] = append(residueByNode[nid], s)
		} else {
			pending = append(pending, s)
		}
	}
	var keptNodes []*resNode
	prevByID := make(map[string]*GPUPlan, len(prev.GPUs))
	for i := range prev.GPUs {
		prevByID[prev.GPUs[i].ID] = &prev.GPUs[i]
	}
	nodeIDs := sortedKeys(residueByNode)
	for _, nid := range nodeIDs {
		members := residueByNode[nid]
		// Stability first: if the node's existing schedule still covers the
		// new rates and SLOs, keep it exactly as-is. Re-deriving batches
		// from noisy rates would otherwise oscillate node compositions at
		// steady load, and every move costs a model reload (§5's concern
		// about reconfiguration churn).
		if node := reuseNode(prevByID[nid], members, profiles, cfg); node != nil {
			node.planID = nid
			stats.NodesKept++
			keptNodes = append(keptNodes, node)
			continue
		}
		node, evicted, err := rebuildNode(members, profiles, cfg)
		if err != nil {
			return nil, stats, err
		}
		pending = append(pending, evicted...)
		stats.SessionsMoved += len(evicted)
		if node != nil {
			node.planID = nid
			stats.NodesKept++
			keptNodes = append(keptNodes, node)
		} else {
			stats.NodesRemoved++
		}
	}

	// --- place pending sessions -------------------------------------------
	sort.Slice(pending, func(i, j int) bool { return pending[i].ID < pending[j].ID })
	var freshNodes []*resNode
	for _, s := range pending {
		p := profiles[s.ModelID]
		dedicated, rest, err := ResidualPlacement(s, p, cfg)
		if err != nil {
			return nil, stats, err
		}
		for _, g := range dedicated {
			g.ID = newID()
			out = append(out, g)
			stats.NodesAdded++
		}
		if rest == nil {
			continue
		}
		item := &resNode{duty: rest.duty, allocs: []residualAlloc{*rest}}
		item.computeOcc()
		if !placeBestFit(item, keptNodes, cfg) && !placeBestFit(item, freshNodes, cfg) {
			item.planID = newID()
			freshNodes = append(freshNodes, item)
			stats.NodesAdded++
		}
		if prevNode[s.ID] != "" {
			// It had a home before; wherever it landed counts as a move
			// only if the node differs. placeBestFit into kept nodes may
			// land it back home, but eviction already counted it, so do
			// not double count here.
			continue
		}
		stats.SessionsMoved++
	}

	// --- consolidate underutilized nodes -----------------------------------
	sort.Slice(keptNodes, func(i, j int) bool { return keptNodes[i].occ < keptNodes[j].occ })
	for i, n := range keptNodes {
		if n == nil || n.occ >= lowOccupancy {
			continue
		}
		others := make([]*resNode, 0, len(keptNodes)+len(freshNodes))
		for j, m := range keptNodes {
			if j != i && m != nil {
				others = append(others, m)
			}
		}
		others = append(others, freshNodes...)
		if drainNode(n, others, cfg) {
			stats.SessionsMoved += len(n.allocs)
			stats.NodesRemoved++
			stats.NodesKept--
			keptNodes[i] = nil
		}
	}

	for _, n := range keptNodes {
		if n == nil {
			continue
		}
		g := n.toPlan()
		g.ID = n.planID
		out = append(out, g)
	}
	for _, n := range freshNodes {
		g := n.toPlan()
		g.ID = n.planID
		out = append(out, g)
	}
	plan := &Plan{GPUs: out}
	return plan, stats, nil
}

// reuseNode checks whether a previous shared node's exact schedule (duty
// cycle and batch sizes) still serves its members' new rates within their
// (possibly changed) SLOs and memory limits. It returns the node with
// updated rates, or nil when any condition fails.
func reuseNode(prevNode *GPUPlan, members []Session, profiles map[string]*profiler.Profile, cfg Config) *resNode {
	if prevNode == nil || prevNode.Saturated || prevNode.Duty <= 0 {
		return nil
	}
	// The member set must match the previous allocation exactly.
	if len(members) != len(prevNode.Allocs) {
		return nil
	}
	byID := make(map[string]Session, len(members))
	for _, m := range members {
		byID[m.ID] = m
	}
	node := &resNode{duty: prevNode.Duty}
	var busy time.Duration
	for _, a := range prevNode.Allocs {
		m, ok := byID[a.SessionID]
		if !ok || m.ModelID != a.ModelID {
			return nil
		}
		p, ok := profiles[a.ModelID]
		if !ok {
			return nil
		}
		if a.Batch > p.MaxBatch {
			return nil
		}
		lat := p.BatchLatency(a.Batch)
		// Throughput: the node runs a batch of a.Batch every duty cycle.
		served := float64(a.Batch) / prevNode.Duty.Seconds()
		if served+rateEpsilon < m.Rate {
			return nil
		}
		// A large demand drop means the schedule is oversized; rebuild so
		// consolidation can reclaim the GPU.
		if m.Rate < 0.5*served-rateEpsilon {
			return nil
		}
		if prevNode.Duty+lat > m.SLO {
			return nil
		}
		busy += lat
		node.allocs = append(node.allocs, residualAlloc{
			session: m, profile: p, batch: a.Batch, duty: prevNode.Duty,
			occ: float64(lat) / float64(prevNode.Duty),
		})
	}
	if busy > prevNode.Duty {
		return nil
	}
	if cfg.GPUMemBytes > 0 && node.memBytes() > cfg.GPUMemBytes {
		return nil
	}
	node.computeOcc()
	return node
}

// rebuildNode re-derives a shared node's schedule for its members' new
// rates. It returns nil if the node ends up empty. Members that no longer
// fit are returned as evicted, cheapest (lowest occupancy contribution)
// first.
func rebuildNode(members []Session, profiles map[string]*profiler.Profile, cfg Config) (*resNode, []Session, error) {
	var allocs []residualAlloc
	var evictedEarly []Session
	for _, s := range members {
		if s.Rate <= 0 {
			continue
		}
		p, ok := profiles[s.ModelID]
		if !ok {
			return nil, nil, fmt.Errorf("scheduler: no profile for model %s", s.ModelID)
		}
		b, d, err := ResidualBatch(p, s.SLO, s.Rate)
		if err != nil {
			return nil, nil, err
		}
		if p.BatchLatency(b) > d {
			// Unsustainable as a shared allocation: hand the session back
			// for dedicated placement.
			evictedEarly = append(evictedEarly, s)
			continue
		}
		allocs = append(allocs, residualAlloc{
			session: s, profile: p, batch: b, duty: d,
			occ: float64(p.BatchLatency(b)) / float64(d),
		})
	}
	evicted := evictedEarly
	for len(allocs) > 0 {
		if node, ok := buildNode(allocs, cfg); ok {
			return node, evicted, nil
		}
		// Evict the cheapest session (smallest standalone occupancy).
		minIdx := 0
		for i := range allocs {
			if allocs[i].occ < allocs[minIdx].occ {
				minIdx = i
			}
		}
		evicted = append(evicted, allocs[minIdx].session)
		allocs = append(allocs[:minIdx], allocs[minIdx+1:]...)
	}
	return nil, evicted, nil
}

// buildNode combines allocations into a single node with duty = min duty,
// reporting whether the result is feasible.
func buildNode(allocs []residualAlloc, cfg Config) (*resNode, bool) {
	duty := allocs[0].duty
	for _, a := range allocs[1:] {
		if a.duty < duty {
			duty = a.duty
		}
	}
	node := &resNode{duty: duty}
	var busy time.Duration
	for _, a := range allocs {
		nb := int(math.Ceil(duty.Seconds()*a.session.Rate - 1e-12))
		if nb < 1 {
			nb = 1
		}
		if nb > a.profile.MaxBatch {
			return nil, false
		}
		lat := a.profile.BatchLatency(nb)
		if duty+lat > a.session.SLO {
			return nil, false
		}
		busy += lat
		a.batch = nb
		node.allocs = append(node.allocs, a)
	}
	if busy > duty {
		return nil, false
	}
	if cfg.GPUMemBytes > 0 && node.memBytes() > cfg.GPUMemBytes {
		return nil, false
	}
	node.computeOcc()
	return node, true
}

// placeBestFit merges item into the candidate node that yields the highest
// post-merge occupancy, mutating that node in place. It reports success.
func placeBestFit(item *resNode, nodes []*resNode, cfg Config) bool {
	bestIdx := -1
	var best *resNode
	for i, n := range nodes {
		if n == nil {
			continue
		}
		merged, ok := mergeNodes(n, item, cfg)
		if ok && (best == nil || merged.occ > best.occ) {
			best, bestIdx = merged, i
		}
	}
	if best == nil {
		return false
	}
	best.planID = nodes[bestIdx].planID
	*nodes[bestIdx] = *best
	return true
}

// drainGrowthMargin requires a drained node's sessions to fit their new
// homes even if their rates grew by this factor. Consolidating with zero
// slack would flap: the next epoch's rate jitter would evict the sessions
// right back out, and each move costs a model reload.
const drainGrowthMargin = 1.15

// drainNode tries to move every session of n into other nodes; on success
// the moves are applied and it returns true, otherwise nothing changes.
func drainNode(n *resNode, others []*resNode, cfg Config) bool {
	// First check placement feasibility with rates inflated by the growth
	// margin, on scratch copies.
	probe := make([]*resNode, len(others))
	for i, o := range others {
		c := *o
		c.allocs = append([]residualAlloc(nil), o.allocs...)
		probe[i] = &c
	}
	for _, a := range n.allocs {
		inflated := a
		inflated.session.Rate *= drainGrowthMargin
		item := &resNode{duty: a.duty, allocs: []residualAlloc{inflated}}
		item.computeOcc()
		if !placeBestFit(item, probe, cfg) {
			return false
		}
	}
	// Feasible with margin: apply for real at actual rates (fits a
	// fortiori, since smaller rates need no larger batches).
	copies := make([]*resNode, len(others))
	for i, o := range others {
		c := *o
		c.allocs = append([]residualAlloc(nil), o.allocs...)
		copies[i] = &c
	}
	for _, a := range n.allocs {
		item := &resNode{duty: a.duty, allocs: []residualAlloc{a}}
		item.computeOcc()
		if !placeBestFit(item, copies, cfg) {
			return false
		}
	}
	for i, o := range others {
		*o = *copies[i]
	}
	return true
}

// planMaxSeq returns the largest numeric suffix of "n<k>" node IDs.
func planMaxSeq(p *Plan) int {
	maxSeq := -1
	for _, g := range p.GPUs {
		var k int
		if _, err := fmt.Sscanf(g.ID, "n%d", &k); err == nil && k > maxSeq {
			maxSeq = k
		}
	}
	return maxSeq
}

func sortedKeys(m map[string][]Session) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// dedicatedKeepFrac is the minimum utilization at which a previously
// dedicated node is retained instead of pushing its session back into the
// shared bin packing.
const dedicatedKeepFrac = 0.5
