package scheduler

import (
	"testing"
	"time"

	"nexus/internal/profiler"
)

// smallProfile models a LeNet-class model: sub-millisecond latency, low SM
// saturation — the spatial-sharing sweet spot.
func smallProfile(t *testing.T) *profiler.Profile {
	t.Helper()
	p := &profiler.Profile{
		ModelID:      "tiny",
		GPU:          profiler.GTX1080Ti,
		Alpha:        20 * time.Microsecond,
		Beta:         400 * time.Microsecond,
		MaxBatch:     64,
		MemBase:      1 << 30,
		MemPerItem:   1 << 20,
		SMSaturation: 0.1,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSpatialSliceChoosesSmallestSufficient(t *testing.T) {
	p := smallProfile(t)
	s := Session{ID: "s", ModelID: "tiny", SLO: 50 * time.Millisecond, Rate: 100}
	frac, batch, ok := spatialSlice(s, p, 8)
	if !ok {
		t.Fatal("no slice found for an easy load")
	}
	// A 1/8 slice runs this model at ~sat/frac = 0.1/0.125 < 1 slowdown
	// (interference only): the smallest slice should do.
	if frac != 0.125 {
		t.Fatalf("slice = %v, want 0.125", frac)
	}
	if batch < 1 {
		t.Fatalf("batch = %d", batch)
	}
}

func TestSpatialSliceInfeasibleSLO(t *testing.T) {
	p := smallProfile(t)
	// SLO below even the full-device batch-1 latency: no slice works.
	s := Session{ID: "s", ModelID: "tiny", SLO: 100 * time.Microsecond, Rate: 10}
	if _, _, ok := spatialSlice(s, p, 8); ok {
		t.Fatal("slice found for infeasible SLO")
	}
}

func TestScheduleSpatialTemporalIsNoOp(t *testing.T) {
	residue := []Session{{ID: "s", ModelID: "tiny", SLO: 50 * time.Millisecond, Rate: 10}}
	nodes, kept, err := ScheduleSpatial(residue, map[string]*profiler.Profile{"tiny": smallProfile(t)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 0 {
		t.Fatalf("temporal placement produced %d spatial nodes", len(nodes))
	}
	if len(kept) != 1 || kept[0].ID != "s" {
		t.Fatalf("residue not passed through: %+v", kept)
	}
}

func TestPackSpatialPlanValidates(t *testing.T) {
	p := smallProfile(t)
	profiles := map[string]*profiler.Profile{"tiny": p}
	sessions := []Session{
		{ID: "s1", ModelID: "tiny", SLO: 50 * time.Millisecond, Rate: 120},
		{ID: "s2", ModelID: "tiny", SLO: 40 * time.Millisecond, Rate: 90},
		{ID: "s3", ModelID: "tiny", SLO: 60 * time.Millisecond, Rate: 200},
	}
	for _, place := range []Placement{PlaceSpatial, PlaceHybrid} {
		cfg := Config{Placement: place, GPUMemBytes: 11 << 30}
		plan, err := Pack(sessions, profiles, cfg)
		if err != nil {
			t.Fatalf("%v: %v", place, err)
		}
		if err := Validate(plan, sessions, profiles, cfg); err != nil {
			t.Fatalf("%v: %v", place, err)
		}
	}
}

func TestPackSpatialBeatsTemporalOnSmallTightSessions(t *testing.T) {
	// The spatial sweet spot: low-rate sessions of a launch-overhead-
	// dominated small model under a tight SLO. The clamped duty cycle
	// (SLO − ℓ(1)) cannot fit ℓ(1), so temporal packing dedicates nearly a
	// whole GPU per session; a 1/8 slice serves the same load with room to
	// spare because the slice idles between sparse batches.
	p := &profiler.Profile{
		ModelID:      "tiny",
		GPU:          profiler.GTX1080Ti,
		Alpha:        50 * time.Microsecond,
		Beta:         2 * time.Millisecond,
		MaxBatch:     64,
		MemBase:      1 << 30,
		MemPerItem:   1 << 20,
		SMSaturation: 0.1,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	profiles := map[string]*profiler.Profile{"tiny": p}
	var sessions []Session
	for i := 0; i < 24; i++ {
		sessions = append(sessions, Session{
			ID: "s" + string(rune('a'+i)), ModelID: "tiny",
			SLO: 5 * time.Millisecond, Rate: 100,
		})
	}
	temporal, err := Pack(sessions, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	spatial, err := Pack(sessions, profiles, Config{Placement: PlaceSpatial})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(spatial, sessions, profiles, Config{Placement: PlaceSpatial}); err != nil {
		t.Fatal(err)
	}
	if spatial.GPUCount() >= temporal.GPUCount() {
		t.Fatalf("spatial plan uses %d GPUs, temporal %d — spatial should win",
			spatial.GPUCount(), temporal.GPUCount())
	}
	hybrid, err := Pack(sessions, profiles, Config{Placement: PlaceHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(hybrid, sessions, profiles, Config{Placement: PlaceHybrid}); err != nil {
		t.Fatal(err)
	}
	if hybrid.GPUCount() > temporal.GPUCount() {
		t.Fatalf("hybrid plan uses %d GPUs > temporal %d", hybrid.GPUCount(), temporal.GPUCount())
	}
}

func TestPackHybridKeepsSaturatedSessionsTemporal(t *testing.T) {
	// A heavy, saturating model gains nothing from slices: hybrid must
	// reproduce the temporal plan's saturated nodes.
	profiles := table2Profiles(t)
	sessions := table2Sessions(320, 0, 0) // 2 saturated GPUs for A
	plan, err := Pack(sessions, profiles, Config{Placement: PlaceHybrid})
	if err != nil {
		t.Fatal(err)
	}
	sat := 0
	for _, g := range plan.GPUs {
		if g.Spatial {
			t.Fatalf("saturating session landed on a spatial node: %+v", g)
		}
		if g.Saturated {
			sat++
		}
	}
	if sat != 2 {
		t.Fatalf("saturated nodes = %d, want 2", sat)
	}
}

func TestSpatialNodeOccupancyIsSliceSum(t *testing.T) {
	g := &GPUPlan{Spatial: true, Allocs: []Alloc{
		{SessionID: "a", ModelID: "tiny", Batch: 1, Rate: 1, Slice: 0.25},
		{SessionID: "b", ModelID: "tiny", Batch: 1, Rate: 1, Slice: 0.5},
	}}
	occ, err := g.Occupancy(nil)
	if err != nil {
		t.Fatal(err)
	}
	if occ != 0.75 {
		t.Fatalf("occupancy = %v, want 0.75", occ)
	}
}

func TestValidateRejectsOverstuffedSpatialNode(t *testing.T) {
	p := smallProfile(t)
	profiles := map[string]*profiler.Profile{"tiny": p}
	sessions := []Session{
		{ID: "a", ModelID: "tiny", SLO: 50 * time.Millisecond, Rate: 10},
		{ID: "b", ModelID: "tiny", SLO: 50 * time.Millisecond, Rate: 10},
	}
	plan := &Plan{GPUs: []GPUPlan{{ID: "n0", Spatial: true, Allocs: []Alloc{
		{SessionID: "a", ModelID: "tiny", Batch: 1, Rate: 10, Slice: 0.75},
		{SessionID: "b", ModelID: "tiny", Batch: 1, Rate: 10, Slice: 0.5},
	}}}}
	if err := Validate(plan, sessions, profiles, Config{Placement: PlaceSpatial}); err == nil {
		t.Fatal("slices summing to 1.25 accepted")
	}
}

func TestValidateRejectsUnsustainableSlice(t *testing.T) {
	p := smallProfile(t)
	profiles := map[string]*profiler.Profile{"tiny": p}
	// A 1/8 slice of this model serves ~O(1000) r/s at batch 1; demand far
	// beyond its service rate must be rejected.
	sessions := []Session{{ID: "a", ModelID: "tiny", SLO: 50 * time.Millisecond, Rate: 1e6}}
	plan := &Plan{GPUs: []GPUPlan{{ID: "n0", Spatial: true, Allocs: []Alloc{
		{SessionID: "a", ModelID: "tiny", Batch: 1, Rate: 1e6, Slice: 0.125},
	}}}}
	if err := Validate(plan, sessions, profiles, Config{Placement: PlaceSpatial}); err == nil {
		t.Fatal("unsustainable slice accepted")
	}
}

func TestSliceDutyClampsToSLO(t *testing.T) {
	// Gather window longer than the SLO allows: clamp to slo - lat.
	if got := SliceDuty(10*time.Millisecond, 30*time.Millisecond, 100, 10); got != 20*time.Millisecond {
		t.Fatalf("SliceDuty = %v, want 20ms", got)
	}
	// Fast gather stays as-is: 10 items at 1000 r/s = 10ms.
	if got := SliceDuty(10*time.Millisecond, 100*time.Millisecond, 10, 1000); got != 10*time.Millisecond {
		t.Fatalf("SliceDuty = %v, want 10ms", got)
	}
}
