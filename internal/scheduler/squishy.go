package scheduler

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nexus/internal/profiler"
)

// Pack runs squishy bin packing (Algorithm 1): it saturates whole GPUs for
// large sessions, then best-fit-decreasing merges the residual loads into
// shared duty cycles. When cfg.Placement allows spatial multiplexing, a
// slice-packing pass between the two pins suitable residuals to
// fractional-SM partitions instead (ScheduleSpatial). The returned plan
// always passes Validate for the given sessions, profiles and config.
func Pack(sessions []Session, profiles map[string]*profiler.Profile, cfg Config) (*Plan, error) {
	nodes, residue, err := ScheduleSaturate(sessions, profiles, cfg)
	if err != nil {
		return nil, err
	}
	spatialNodes, residue, err := ScheduleSpatial(residue, profiles, cfg)
	if err != nil {
		return nil, err
	}
	resNodes, err := ScheduleResidue(residue, profiles, cfg)
	if err != nil {
		return nil, err
	}
	plan := &Plan{GPUs: append(append(nodes, spatialNodes...), resNodes...)}
	for i := range plan.GPUs {
		plan.GPUs[i].ID = fmt.Sprintf("n%d", i)
	}
	return plan, nil
}

// ScheduleSaturate allocates whole GPUs to sessions with enough load to
// saturate them (Algorithm 1, lines 4-11). It returns the saturated nodes
// and the residual per-session loads still to be packed.
func ScheduleSaturate(sessions []Session, profiles map[string]*profiler.Profile, cfg Config) ([]GPUPlan, []Session, error) {
	var nodes []GPUPlan
	var residue []Session
	for _, s := range sortSessions(sessions) {
		if err := s.Validate(); err != nil {
			return nil, nil, err
		}
		if s.Rate == 0 {
			continue
		}
		p, ok := profiles[s.ModelID]
		if !ok {
			return nil, nil, fmt.Errorf("scheduler: no profile for model %s (session %s)", s.ModelID, s.ID)
		}
		// B = argmax{b : factor*ℓ(b) <= SLO}; worst case is one full
		// batch of waiting plus one of execution (§4.1).
		maxLat := time.Duration(float64(s.SLO) / cfg.sloFactor())
		b := p.MaxBatchWithin(maxLat)
		if b == 0 {
			return nil, nil, fmt.Errorf("scheduler: session %s infeasible: %v*l(1)=%v exceeds SLO %v",
				s.ID, cfg.sloFactor(), time.Duration(cfg.sloFactor()*float64(p.BatchLatency(1))), s.SLO)
		}
		t := p.Throughput(b)
		n := int(s.Rate / t)
		for i := 0; i < n; i++ {
			nodes = append(nodes, GPUPlan{
				Duty:      p.BatchLatency(b),
				Saturated: true,
				Allocs: []Alloc{{
					SessionID: s.ID, ModelID: s.ModelID, Batch: b, Rate: t,
				}},
			})
		}
		if r := s.Rate - float64(n)*t; r > rateEpsilon {
			rs := s
			rs.Rate = r
			residue = append(residue, rs)
		}
	}
	return nodes, residue, nil
}

// residualAlloc is the initial single-session allocation of a residual
// load (Algorithm 1, lines 12-15): the largest batch b whose duty cycle
// b/r plus execution still meets the SLO.
type residualAlloc struct {
	session Session
	profile *profiler.Profile
	batch   int
	duty    time.Duration
	occ     float64
}

// ResidualBatch computes the batch size and duty cycle for a residual load
// of the given rate under the SLO: the largest b with ℓ(b) + b/rate <= SLO.
// Low-rate sessions for which even b=1 cannot fill a duty cycle in time run
// at batch 1 with the duty cycle clamped to SLO - ℓ(1).
func ResidualBatch(p *profiler.Profile, slo time.Duration, rate float64) (batch int, duty time.Duration, err error) {
	if rate <= 0 {
		return 0, 0, fmt.Errorf("scheduler: ResidualBatch with rate %v", rate)
	}
	gather := func(b int) time.Duration {
		return time.Duration(float64(b) / rate * float64(time.Second))
	}
	feasible := func(b int) bool { return p.BatchLatency(b)+gather(b) <= slo }
	if !feasible(1) {
		// Too few requests to fill even a single-item duty cycle within
		// the SLO: run batch 1 whenever work arrives, with the duty cycle
		// bounded so worst-case latency still meets the SLO.
		duty = slo - p.BatchLatency(1)
		if duty <= 0 {
			return 0, 0, fmt.Errorf("scheduler: SLO %v below batch-1 latency %v for %s",
				slo, p.BatchLatency(1), p.ModelID)
		}
		return 1, duty, nil
	}
	lo, hi := 1, p.MaxBatch
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, gather(lo), nil
}

// ResidualPlacement expands one residual load into zero or more dedicated
// nodes plus at most one shareable allocation. The paper's batch choice
// (line 13) can select a batch whose execution latency exceeds its gather
// time b/r — a load no shared duty cycle can sustain (occupancy would top
// 1). Such loads get a dedicated node running the saturate batch
// back-to-back (worst case 2ℓ(B) <= SLO, §4.1), and only a sustainable
// remainder, if any, becomes a shareable residual allocation.
func ResidualPlacement(s Session, p *profiler.Profile, cfg Config) (dedicated []GPUPlan, rest *residualAlloc, err error) {
	rate := s.Rate
	for iter := 0; rate > rateEpsilon; iter++ {
		if iter > 10000 {
			return nil, nil, fmt.Errorf("scheduler: residual placement for %s did not converge", s.ID)
		}
		b, d, err := ResidualBatch(p, s.SLO, rate)
		if err != nil {
			return nil, nil, err
		}
		lat := p.BatchLatency(b)
		if lat <= d {
			rs := s
			rs.Rate = rate
			return dedicated, &residualAlloc{
				session: rs, profile: p, batch: b, duty: d,
				occ: float64(lat) / float64(d),
			}, nil
		}
		// Unsustainable as a shared allocation: dedicate a saturated node.
		maxLat := time.Duration(float64(s.SLO) / cfg.sloFactor())
		bSat := p.MaxBatchWithin(maxLat)
		if bSat == 0 {
			return nil, nil, fmt.Errorf("scheduler: session %s infeasible under SLO %v", s.ID, s.SLO)
		}
		tput := p.Throughput(bSat)
		serve := rate
		if serve > tput {
			serve = tput
		}
		dedicated = append(dedicated, GPUPlan{
			Duty:      p.BatchLatency(bSat),
			Saturated: true,
			Allocs:    []Alloc{{SessionID: s.ID, ModelID: s.ModelID, Batch: bSat, Rate: serve}},
		})
		rate -= serve
	}
	return dedicated, nil, nil
}

// ScheduleResidue packs residual loads into shared nodes (Algorithm 1,
// lines 12-30): initial max-batch allocations, sorted by occupancy
// descending, merged best-fit into existing duty cycles.
func ScheduleResidue(residue []Session, profiles map[string]*profiler.Profile, cfg Config) ([]GPUPlan, error) {
	allocs := make([]residualAlloc, 0, len(residue))
	var dedicated []GPUPlan
	for _, s := range sortSessions(residue) {
		if s.Rate <= 0 {
			continue
		}
		p, ok := profiles[s.ModelID]
		if !ok {
			return nil, fmt.Errorf("scheduler: no profile for model %s (session %s)", s.ModelID, s.ID)
		}
		ded, rest, err := ResidualPlacement(s, p, cfg)
		if err != nil {
			return nil, err
		}
		dedicated = append(dedicated, ded...)
		if rest != nil {
			allocs = append(allocs, *rest)
		}
	}
	// Best-fit decreasing by occupancy (line 16).
	sort.SliceStable(allocs, func(i, j int) bool {
		if allocs[i].occ != allocs[j].occ {
			return allocs[i].occ > allocs[j].occ
		}
		return allocs[i].session.ID < allocs[j].session.ID
	})
	var nodes []*resNode
	for i := range allocs {
		item := &resNode{duty: allocs[i].duty, allocs: []residualAlloc{allocs[i]}}
		item.computeOcc()
		bestIdx := -1
		var best *resNode
		for ni, n := range nodes {
			merged, ok := mergeNodes(n, item, cfg)
			if ok && (best == nil || merged.occ > best.occ) {
				best, bestIdx = merged, ni
			}
		}
		if best != nil {
			nodes[bestIdx] = best
		} else {
			nodes = append(nodes, item)
		}
	}
	out := make([]GPUPlan, 0, len(nodes)+len(dedicated))
	out = append(out, dedicated...)
	for _, n := range nodes {
		out = append(out, n.toPlan())
	}
	return out, nil
}

// resNode is a shared GPU node under construction.
type resNode struct {
	duty   time.Duration
	allocs []residualAlloc
	occ    float64
	planID string // stable node ID, used by incremental scheduling
}

func (n *resNode) computeOcc() {
	var busy time.Duration
	for _, a := range n.allocs {
		busy += a.profile.BatchLatency(a.batch)
	}
	n.occ = float64(busy) / float64(n.duty)
}

func (n *resNode) memBytes() int64 {
	var sum int64
	for _, a := range n.allocs {
		sum += a.profile.MemBase + int64(a.batch)*a.profile.MemPerItem
	}
	return sum
}

func (n *resNode) toPlan() GPUPlan {
	g := GPUPlan{Duty: n.duty}
	for _, a := range n.allocs {
		g.Allocs = append(g.Allocs, Alloc{
			SessionID: a.session.ID,
			ModelID:   a.session.ModelID,
			Batch:     a.batch,
			Rate:      a.session.Rate,
		})
	}
	return g
}

// mergeNodes attempts to combine two nodes into one duty cycle (Figure 7):
// the new duty cycle is the smaller of the two, every session's batch size
// is recomputed as ceil(duty*rate) (which only shrinks batches, so SLOs
// are preserved), and the merge succeeds if the batch executions fit within
// the new duty cycle and memory capacity permits.
func mergeNodes(a, b *resNode, cfg Config) (*resNode, bool) {
	duty := a.duty
	if b.duty < duty {
		duty = b.duty
	}
	merged := &resNode{duty: duty}
	var busy time.Duration
	for _, src := range [][]residualAlloc{a.allocs, b.allocs} {
		for _, al := range src {
			nb := int(math.Ceil(duty.Seconds()*al.session.Rate - 1e-12))
			if nb < 1 {
				nb = 1
			}
			if nb > al.profile.MaxBatch {
				return nil, false
			}
			lat := al.profile.BatchLatency(nb)
			if duty+lat > al.session.SLO {
				return nil, false
			}
			busy += lat
			al.batch = nb
			merged.allocs = append(merged.allocs, al)
		}
	}
	if busy > duty {
		return nil, false
	}
	if cfg.GPUMemBytes > 0 && merged.memBytes() > cfg.GPUMemBytes {
		return nil, false
	}
	merged.computeOcc()
	return merged, true
}
