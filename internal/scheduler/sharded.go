package scheduler

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"

	"nexus/internal/profiler"
	"nexus/internal/runner"
)

// This file implements the sharded, incremental planner: sessions are
// partitioned across N shards that each run squishy packing concurrently
// over their own slice of the cluster, shards whose workload has not moved
// beyond a hysteresis band skip re-packing entirely and carry their plan
// forward, and a deterministic cross-shard rebalance step drains
// underutilized shared nodes into other shards' spare duty cycles. The
// partitioned-scheduler structure follows Arktos's concurrent per-partition
// schedulers; the hysteresis band reuses the split-hysteresis idiom the
// control plane already applies to query latency splits.

// ShardOf returns the deterministic home shard for a session: FNV-1a over
// the session ID, modulo the shard count. Sessions keep this home until a
// cross-shard rebalance migrates them.
func ShardOf(sessionID string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(sessionID))
	return int(h.Sum32() % uint32(shards))
}

// shardNodePrefix namespaces per-shard node IDs in merged plans: shard 3's
// local node "n7" becomes "s3/n7". Single-shard planners keep bare local
// IDs, so a 1-shard plan is byte-identical to the monolithic planner's.
func shardNodeID(shard, shards int, local string) string {
	if shards <= 1 {
		return local
	}
	return "s" + strconv.Itoa(shard) + "/" + local
}

// NodeShard parses the shard index out of a merged-plan node ID ("s3/n7"
// -> 3, true). Monolithic node IDs ("n7") report false.
func NodeShard(id string) (int, bool) {
	if !strings.HasPrefix(id, "s") {
		return 0, false
	}
	slash := strings.IndexByte(id, '/')
	if slash < 2 {
		return 0, false
	}
	k, err := strconv.Atoi(id[1:slash])
	if err != nil || k < 0 {
		return 0, false
	}
	return k, true
}

// ShardOpts selects per-epoch sharded planning behaviour.
type ShardOpts struct {
	// Incremental reuses each shard's previous plan via Incremental()
	// instead of re-packing from scratch.
	Incremental bool
	// Hysteresis is the relative rate band within which a shard skips
	// re-packing and carries its plan forward (0 disables skipping, every
	// shard re-plans every epoch). A shard re-plans when any member
	// session's rate moved more than Hysteresis*old (and more than an
	// absolute floor), its SLO or model changed, or membership changed.
	Hysteresis float64
	// Force marks every shard dirty regardless of hysteresis. The control
	// plane sets it on admission-control re-iterations, where globally
	// scaled rates must reach every shard.
	Force bool
	// Workers bounds the concurrent shard planners (0 = one per shard).
	Workers int
	// WallClock records per-shard planning wall time in ShardStats.
	// Off by default: wall time is nondeterministic.
	WallClock bool
}

// rateHysteresisFloor is the absolute rate change (r/s) below which a
// session never re-triggers packing, mirroring ratesChangedMaterially's
// guard in the control plane: sub-r/s wobbles on tiny sessions do not
// justify disturbing a shard.
const rateHysteresisFloor = 0.5

// maxShardDonors bounds how many low-occupancy nodes the cross-shard
// rebalance attempts to drain per epoch, keeping the sequential merge step
// cheap relative to the parallel packing it follows.
const maxShardDonors = 64

// ShardStats summarizes one sharded planning pass.
type ShardStats struct {
	MoveStats
	Shards    int // shard count of the planner
	Replanned int // shards that ran packing this epoch
	Skipped   int // shards that carried their plan forward (hysteresis)
	// CrossShardMoves counts session placements migrated to a different
	// shard by the rebalance step.
	CrossShardMoves int
	// ShardWall holds per-shard planning wall time (nil unless
	// ShardOpts.WallClock; zero for skipped shards).
	ShardWall []time.Duration
}

// sessionSig is the per-session signature hysteresis compares against: the
// values the shard's current plan was derived for.
type sessionSig struct {
	rate  float64
	slo   time.Duration
	model string
}

// ShardResult is one sharded planning pass, not yet committed: the merged
// plan plus the planner state that Commit installs once the control plane
// accepts the plan (admission control may instead re-plan at scaled rates).
type ShardResult struct {
	Plan  *Plan
	Stats ShardStats

	local []*Plan // per-shard plans with local node IDs
	sigs  []map[string]sessionSig
	home  map[string]int
}

// ShardPlanner partitions sessions across shards and plans them
// concurrently, carrying per-shard plans across epochs. The zero number of
// shards is not valid; use NewShardPlanner.
type ShardPlanner struct {
	shards int
	prev   []*Plan // per-shard plans, local node IDs
	sigs   []map[string]sessionSig
	home   map[string]int // session -> shard (hash default, rebalance moves)
}

// NewShardPlanner creates a planner with the given shard count (minimum 1).
func NewShardPlanner(shards int) *ShardPlanner {
	if shards < 1 {
		shards = 1
	}
	return &ShardPlanner{
		shards: shards,
		prev:   make([]*Plan, shards),
		sigs:   make([]map[string]sessionSig, shards),
		home:   make(map[string]int),
	}
}

// Shards returns the shard count.
func (sp *ShardPlanner) Shards() int { return sp.shards }

// Plan runs one sharded planning pass. It does not mutate the planner:
// the control plane may call it several times per epoch while admission
// control scales rates, then Commit exactly the accepted result.
func (sp *ShardPlanner) Plan(sessions []Session, profiles map[string]*profiler.Profile,
	cfg Config, opts ShardOpts) (*ShardResult, error) {
	n := sp.shards
	members := make([][]Session, n)
	home := make(map[string]int, len(sessions))
	for _, s := range sortSessions(sessions) {
		k, ok := sp.home[s.ID]
		if !ok || k < 0 || k >= n {
			k = ShardOf(s.ID, n)
		}
		home[s.ID] = k
		members[k] = append(members[k], s)
	}

	res := &ShardResult{
		local: make([]*Plan, n),
		sigs:  make([]map[string]sessionSig, n),
		home:  home,
		Stats: ShardStats{Shards: n},
	}
	dirty := make([]bool, n)
	for k := 0; k < n; k++ {
		dirty[k] = opts.Force || opts.Hysteresis <= 0 || sp.prev[k] == nil ||
			shardDirty(members[k], sp.sigs[k], opts.Hysteresis)
	}

	type shardOut struct {
		plan  *Plan
		stats MoveStats
		wall  time.Duration
		err   error
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = n
	}
	outs := runner.MapN(workers, n, func(k int) shardOut {
		if !dirty[k] {
			return shardOut{plan: sp.prev[k]}
		}
		var start time.Time
		if opts.WallClock {
			start = time.Now()
		}
		var o shardOut
		if opts.Incremental && sp.prev[k] != nil {
			o.plan, o.stats, o.err = Incremental(sp.prev[k], members[k], profiles, cfg)
		} else {
			o.plan, o.err = Pack(members[k], profiles, cfg)
		}
		if opts.WallClock {
			o.wall = time.Since(start)
		}
		return o
	})
	for k, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("scheduler: shard %d: %w", k, o.err)
		}
		res.local[k] = o.plan
		if dirty[k] {
			res.Stats.Replanned++
			res.Stats.NodesKept += o.stats.NodesKept
			res.Stats.NodesAdded += o.stats.NodesAdded
			res.Stats.NodesRemoved += o.stats.NodesRemoved
			res.Stats.SessionsMoved += o.stats.SessionsMoved
			res.sigs[k] = signatures(members[k])
		} else {
			res.Stats.Skipped++
			res.Stats.NodesKept += len(o.plan.GPUs)
			res.sigs[k] = sp.sigs[k]
		}
	}
	if opts.WallClock {
		res.Stats.ShardWall = make([]time.Duration, n)
		for k, o := range outs {
			res.Stats.ShardWall[k] = o.wall
		}
	}

	if n >= 2 {
		sp.rebalance(res, dirty, profiles, cfg)
	}

	merged := &Plan{}
	for k := 0; k < n; k++ {
		for _, g := range res.local[k].GPUs {
			g.ID = shardNodeID(k, n, g.ID)
			merged.GPUs = append(merged.GPUs, g)
		}
	}
	res.Plan = merged
	return res, nil
}

// Commit installs an accepted planning pass as the state the next epoch
// plans incrementally against.
func (sp *ShardPlanner) Commit(res *ShardResult) {
	sp.prev = res.local
	sp.sigs = res.sigs
	sp.home = res.home
}

// signatures captures the per-session values a fresh shard plan was
// derived for.
func signatures(members []Session) map[string]sessionSig {
	sigs := make(map[string]sessionSig, len(members))
	for _, m := range members {
		sigs[m.ID] = sessionSig{rate: m.Rate, slo: m.SLO, model: m.ModelID}
	}
	return sigs
}

// shardDirty reports whether a shard's workload moved beyond the
// hysteresis band since its plan was last derived.
func shardDirty(members []Session, sigs map[string]sessionSig, band float64) bool {
	if len(members) != len(sigs) {
		return true
	}
	for _, m := range members {
		old, ok := sigs[m.ID]
		if !ok || old.slo != m.SLO || old.model != m.ModelID {
			return true
		}
		diff := m.Rate - old.rate
		if diff < 0 {
			diff = -diff
		}
		if diff > band*old.rate && diff > rateHysteresisFloor {
			return true
		}
	}
	return false
}

// shardNode is one shared node of a freshly replanned shard, a candidate
// donor or recipient for the cross-shard rebalance.
type shardNode struct {
	shard   int
	pos     int // index in the shard plan's GPUs slice
	res     *resNode
	removed bool
}

// rebalance is the lightweight cross-shard step: the lowest-occupancy
// shared nodes of freshly replanned shards are drained, best-fit, into the
// remaining shared nodes across all replanned shards; a session that lands
// on another shard migrates its home there. Only sessions whose shard holds
// no dedicated node for them are eligible — migrating a session with
// saturated GPUs in its home shard would drag whole-GPU allocations across
// shards next epoch for no gain. Skipped (clean) shards are never touched:
// their plans carry forward verbatim. Everything is ordered, so the result
// is deterministic.
func (sp *ShardPlanner) rebalance(res *ShardResult, dirty []bool,
	profiles map[string]*profiler.Profile, cfg Config) {
	var nodes []*shardNode
	pinned := make(map[string]bool) // sessions with dedicated nodes, by shard
	for k := range res.local {
		if !dirty[k] {
			continue
		}
		for _, g := range res.local[k].GPUs {
			if g.Saturated {
				for _, a := range g.Allocs {
					pinned[pinKey(k, a.SessionID)] = true
				}
			}
		}
		for pos := range res.local[k].GPUs {
			g := &res.local[k].GPUs[pos]
			// Spatial nodes never participate: a pinned slice has no duty
			// cycle to merge into another node's round.
			if g.Saturated || g.Spatial || g.Duty <= 0 || len(g.Allocs) == 0 {
				continue
			}
			if rn := gpuToRes(g, profiles); rn != nil {
				nodes = append(nodes, &shardNode{shard: k, pos: pos, res: rn})
			}
		}
	}
	if len(nodes) < 2 {
		return
	}
	// Donors: lowest occupancy first, deterministic tie-break, bounded.
	donors := make([]*shardNode, 0, len(nodes))
	for _, sn := range nodes {
		if sn.res.occ >= lowOccupancy {
			continue
		}
		eligible := true
		for _, a := range sn.res.allocs {
			if pinned[pinKey(sn.shard, a.session.ID)] {
				eligible = false
				break
			}
		}
		if eligible {
			donors = append(donors, sn)
		}
	}
	sortShardNodes(donors)
	if len(donors) > maxShardDonors {
		donors = donors[:maxShardDonors]
	}
	changed := make(map[int]bool)
	for _, d := range donors {
		if d.removed {
			continue
		}
		dests, ok := drainShardNode(d, nodes, cfg)
		if !ok {
			continue
		}
		d.removed = true
		changed[d.shard] = true
		res.Stats.NodesRemoved++
		res.Stats.SessionsMoved += len(d.res.allocs)
		for i, a := range d.res.allocs {
			to := nodes[dests[i]]
			changed[to.shard] = true
			if to.shard != d.shard {
				res.Stats.CrossShardMoves++
				res.home[a.session.ID] = to.shard
			}
		}
	}
	if len(changed) == 0 {
		return
	}
	// Rebuild the affected shard plans: original node order, drained
	// donors dropped, recipients re-derived from their resNodes.
	for k := range res.local {
		if !changed[k] {
			continue
		}
		byPos := make(map[int]*shardNode)
		for _, sn := range nodes {
			if sn.shard == k {
				byPos[sn.pos] = sn
			}
		}
		old := res.local[k].GPUs
		rebuilt := make([]GPUPlan, 0, len(old))
		for pos := range old {
			sn := byPos[pos]
			if sn == nil {
				rebuilt = append(rebuilt, old[pos])
				continue
			}
			if sn.removed {
				continue
			}
			g := sn.res.toPlan()
			g.ID = old[pos].ID
			rebuilt = append(rebuilt, g)
		}
		res.local[k] = &Plan{GPUs: rebuilt}
	}
}

func pinKey(shard int, sessionID string) string {
	return strconv.Itoa(shard) + "\x00" + sessionID
}

// sortShardNodes orders rebalance donors: occupancy ascending, then shard,
// then position — a total, deterministic order.
func sortShardNodes(nodes []*shardNode) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && shardNodeLess(nodes[j], nodes[j-1]); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

func shardNodeLess(a, b *shardNode) bool {
	if a.res.occ != b.res.occ {
		return a.res.occ < b.res.occ
	}
	if a.shard != b.shard {
		return a.shard < b.shard
	}
	return a.pos < b.pos
}

// gpuToRes reconstructs a shared plan node as a resNode so the rebalance
// can reuse the merge machinery. Returns nil when a profile is missing
// (defensive: such a node is simply not a rebalance candidate).
func gpuToRes(g *GPUPlan, profiles map[string]*profiler.Profile) *resNode {
	rn := &resNode{duty: g.Duty, planID: g.ID}
	for _, a := range g.Allocs {
		p, ok := profiles[a.ModelID]
		if !ok || a.Batch < 1 {
			return nil
		}
		rn.allocs = append(rn.allocs, residualAlloc{
			session: Session{ID: a.SessionID, ModelID: a.ModelID, SLO: g.Duty + p.BatchLatency(a.Batch), Rate: a.Rate},
			profile: p, batch: a.Batch, duty: g.Duty,
			occ: float64(p.BatchLatency(a.Batch)) / float64(g.Duty),
		})
	}
	rn.computeOcc()
	return rn
}

// drainShardNode tries to move every allocation of donor d into other live
// shard nodes, best-fit. On success the moves are applied in place and the
// destination index of each allocation is returned; on failure nothing
// changes. Unlike intra-shard consolidation there is no growth margin:
// flap protection comes from the hysteresis band upstream (a shard whose
// rates stay in band never re-plans, so never re-balances), and with
// hysteresis off the decision is a pure function of this epoch's rates.
func drainShardNode(d *shardNode, nodes []*shardNode, cfg Config) ([]int, bool) {
	// mergeNodes never mutates its inputs, so speculative placement just
	// swaps node pointers; rollback restores the originals.
	touched := make(map[int]*resNode)
	dests := make([]int, 0, len(d.res.allocs))
	for _, a := range d.res.allocs {
		item := &resNode{duty: a.duty, allocs: []residualAlloc{a}}
		item.computeOcc()
		bestIdx := -1
		var best *resNode
		for i, sn := range nodes {
			if sn == d || sn.removed {
				continue
			}
			merged, ok := mergeNodes(sn.res, item, cfg)
			if ok && (best == nil || merged.occ > best.occ) {
				best, bestIdx = merged, i
			}
		}
		if best == nil {
			for i, saved := range touched {
				nodes[i].res = saved
			}
			return nil, false
		}
		if _, saved := touched[bestIdx]; !saved {
			touched[bestIdx] = nodes[bestIdx].res
		}
		best.planID = nodes[bestIdx].res.planID
		nodes[bestIdx].res = best
		dests = append(dests, bestIdx)
	}
	return dests, true
}
