package scheduler

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nexus/internal/profiler"
)

// TestResidualPlacementSustainable: a load whose SLO-feasible batch cannot
// keep up (ℓ(b) > b/r) must be carved onto dedicated saturate-batch nodes.
func TestResidualPlacementSustainable(t *testing.T) {
	// α=1ms, β=25ms, SLO 60ms: saturate batch B=5 (2ℓ(5)=60), T=166.7 r/s.
	// At rate 150, the shareable batch choice is unsustainable (see §6.1
	// discussion in DESIGN.md).
	p := linearProfile("m", time.Millisecond, 25*time.Millisecond, 64)
	s := Session{ID: "s", ModelID: "m", SLO: 60 * time.Millisecond, Rate: 150}
	dedicated, rest, err := ResidualPlacement(s, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dedicated) != 1 {
		t.Fatalf("dedicated nodes = %d, want 1", len(dedicated))
	}
	g := dedicated[0]
	if !g.Saturated {
		t.Fatal("carved node not marked saturated")
	}
	if g.Allocs[0].Batch != 5 {
		t.Fatalf("carved batch %d, want saturate batch 5", g.Allocs[0].Batch)
	}
	if math.Abs(g.Allocs[0].Rate-150) > 1e-9 {
		t.Fatalf("carved rate %v, want the whole 150", g.Allocs[0].Rate)
	}
	if rest != nil {
		t.Fatalf("unexpected shareable remainder %+v", rest)
	}
}

func TestResidualPlacementShareable(t *testing.T) {
	p := linearProfile("m", time.Millisecond, 10*time.Millisecond, 64)
	s := Session{ID: "s", ModelID: "m", SLO: 200 * time.Millisecond, Rate: 50}
	dedicated, rest, err := ResidualPlacement(s, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dedicated) != 0 {
		t.Fatalf("light load carved %d dedicated nodes", len(dedicated))
	}
	if rest == nil {
		t.Fatal("no shareable allocation")
	}
	if rest.occ > 1 {
		t.Fatalf("shareable occupancy %v > 1", rest.occ)
	}
}

// Property: ResidualPlacement conserves rate and produces only sustainable
// pieces (dedicated nodes run at most at capacity, shareable occ <= 1).
func TestPropertyResidualPlacement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := time.Duration(rng.Intn(3000)+200) * time.Microsecond
		beta := time.Duration(rng.Intn(30)+2) * time.Millisecond
		p := linearProfile("m", alpha, beta, 64)
		slo := 2*p.BatchLatency(1) + time.Duration(rng.Intn(200)+5)*time.Millisecond
		rate := float64(rng.Intn(3000)) + 1
		s := Session{ID: "s", ModelID: "m", SLO: slo, Rate: rate}
		dedicated, rest, err := ResidualPlacement(s, p, Config{})
		if err != nil {
			return false
		}
		var served float64
		for _, g := range dedicated {
			served += g.Allocs[0].Rate
			// Dedicated nodes must be SLO-safe and within capacity.
			if 2*p.BatchLatency(g.Allocs[0].Batch) > slo {
				return false
			}
			if g.Allocs[0].Rate > p.Throughput(g.Allocs[0].Batch)+1e-9 {
				return false
			}
		}
		if rest != nil {
			served += rest.session.Rate
			if rest.occ > 1+1e-9 {
				return false
			}
			if rest.duty+p.BatchLatency(rest.batch) > slo {
				return false
			}
		}
		return math.Abs(served-rate) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanSessionRate(t *testing.T) {
	plan := &Plan{GPUs: []GPUPlan{
		{ID: "a", Allocs: []Alloc{{SessionID: "s", Rate: 10}}},
		{ID: "b", Allocs: []Alloc{{SessionID: "s", Rate: 5}, {SessionID: "t", Rate: 7}}},
	}}
	if got := plan.SessionRate("s"); got != 15 {
		t.Fatalf("SessionRate(s) = %v", got)
	}
	if got := plan.SessionRate("missing"); got != 0 {
		t.Fatalf("SessionRate(missing) = %v", got)
	}
}

func TestOccupancyErrors(t *testing.T) {
	g := &GPUPlan{Duty: 0, Allocs: []Alloc{{ModelID: "m", Batch: 1}}}
	if _, err := g.Occupancy(nil); err == nil {
		t.Fatal("zero duty accepted")
	}
	g.Duty = time.Second
	if _, err := g.Occupancy(map[string]*profiler.Profile{}); err == nil {
		t.Fatal("missing profile accepted")
	}
}

func TestSLOFactorConfig(t *testing.T) {
	p := linearProfile("m", time.Millisecond, 10*time.Millisecond, 64)
	profiles := map[string]*profiler.Profile{"m": p}
	sessions := []Session{{ID: "s", ModelID: "m", SLO: 100 * time.Millisecond, Rate: 2000}}
	// Factor 2 (default): B = max b with l(b) <= 50ms -> 40, T = 800/s.
	plan2, err := Pack(sessions, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Factor 4: B = max b with l(b) <= 25ms -> 15, lower T -> more GPUs.
	plan4, err := Pack(sessions, profiles, Config{SLOFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan4.GPUCount() <= plan2.GPUCount() {
		t.Fatalf("stricter factor should need more GPUs: %d vs %d", plan4.GPUCount(), plan2.GPUCount())
	}
}

// TestIncrementalReuseStableBatches: tiny rate jitter must not change a
// shared node's batches or duty cycle (the reuse path).
func TestIncrementalReuseStableBatches(t *testing.T) {
	p := linearProfile("m", time.Millisecond, 10*time.Millisecond, 64)
	profiles := map[string]*profiler.Profile{"m": p}
	sessions := []Session{
		{ID: "s1", ModelID: "m", SLO: 150 * time.Millisecond, Rate: 100},
		{ID: "s2", ModelID: "m", SLO: 150 * time.Millisecond, Rate: 80},
	}
	prev, err := Pack(sessions, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	jittered := []Session{
		{ID: "s1", ModelID: "m", SLO: 150 * time.Millisecond, Rate: 101},
		{ID: "s2", ModelID: "m", SLO: 150 * time.Millisecond, Rate: 79.5},
	}
	next, stats, err := Incremental(prev, jittered, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SessionsMoved != 0 {
		t.Fatalf("jitter moved sessions: %+v", stats)
	}
	if err := Validate(next, jittered, profiles, Config{}); err != nil {
		t.Fatal(err)
	}
	// Node set unchanged: rebuilds in place are fine (batch updates do not
	// reload models), but nodes must not appear or vanish under jitter.
	if len(next.GPUs) != len(prev.GPUs) {
		t.Fatalf("node count changed %d -> %d", len(prev.GPUs), len(next.GPUs))
	}
	// With rates strictly below the previous plan, the exact schedule is
	// reused verbatim.
	lower := []Session{
		{ID: "s1", ModelID: "m", SLO: 150 * time.Millisecond, Rate: 95},
		{ID: "s2", ModelID: "m", SLO: 150 * time.Millisecond, Rate: 76},
	}
	reused, _, err := Incremental(prev, lower, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range prev.GPUs {
		if prev.GPUs[i].Duty != reused.GPUs[i].Duty {
			t.Fatalf("duty changed on falling rates: %v -> %v", prev.GPUs[i].Duty, reused.GPUs[i].Duty)
		}
	}
}

// TestIncrementalDedicatedKeepHysteresis: a session at the dedicated/
// shareable boundary keeps its dedicated node while still >=50% utilized.
func TestIncrementalDedicatedKeepHysteresis(t *testing.T) {
	p := linearProfile("m", time.Millisecond, 25*time.Millisecond, 64)
	profiles := map[string]*profiler.Profile{"m": p}
	// Same setup as TestResidualPlacementSustainable: rate 150 carves a
	// dedicated node (capacity 166.7).
	hi := []Session{{ID: "s", ModelID: "m", SLO: 60 * time.Millisecond, Rate: 150}}
	prev, err := Pack(hi, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prev.GPUs) != 1 || !prev.GPUs[0].Saturated {
		t.Fatalf("setup: expected one dedicated node, got %+v", prev.GPUs)
	}
	// Rate drops to 100 (60% of capacity): keep the dedicated node.
	mid := []Session{{ID: "s", ModelID: "m", SLO: 60 * time.Millisecond, Rate: 100}}
	next, stats, err := Incremental(prev, mid, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodesRemoved != 0 || !next.GPUs[0].Saturated {
		t.Fatalf("boundary jitter flapped the dedicated node: %+v", stats)
	}
	// Rate collapses to 20 (12%): release it.
	lo := []Session{{ID: "s", ModelID: "m", SLO: 60 * time.Millisecond, Rate: 20}}
	next2, stats2, err := Incremental(next, lo, profiles, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(next2, lo, profiles, Config{}); err != nil {
		t.Fatal(err)
	}
	if stats2.NodesRemoved == 0 {
		t.Fatalf("collapsed load kept its dedicated node: %+v", stats2)
	}
}

func TestBatchObliviousIntegralReplicas(t *testing.T) {
	p := linearProfile("m", time.Millisecond, 10*time.Millisecond, 64)
	profiles := map[string]*profiler.Profile{"m": p}
	// One heavy session wanting ~half of a 4-GPU cluster: 2 replicas.
	sessions := []Session{
		{ID: "big", ModelID: "m", SLO: 100 * time.Millisecond, Rate: 900},
		{ID: "small", ModelID: "m", SLO: 100 * time.Millisecond, Rate: 100},
	}
	plan, err := BatchOblivious(sessions, profiles, 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	replicas := map[string]int{}
	for _, g := range plan.GPUs {
		for _, a := range g.Allocs {
			replicas[a.SessionID]++
		}
	}
	if replicas["big"] < 2 {
		t.Fatalf("big session got %d replicas, want >= 2", replicas["big"])
	}
	if replicas["small"] != 1 {
		t.Fatalf("small session got %d replicas, want 1", replicas["small"])
	}
}

func TestValidateSLOFactorOnSaturated(t *testing.T) {
	p := linearProfile("m", time.Millisecond, 10*time.Millisecond, 64)
	profiles := map[string]*profiler.Profile{"m": p}
	sessions := []Session{{ID: "s", ModelID: "m", SLO: 100 * time.Millisecond, Rate: 100}}
	// A saturated node at batch 40 (l=50ms): valid under factor 2, invalid
	// under factor 3.
	plan := &Plan{GPUs: []GPUPlan{{
		ID: "n0", Duty: 50 * time.Millisecond, Saturated: true,
		Allocs: []Alloc{{SessionID: "s", ModelID: "m", Batch: 40, Rate: 100}},
	}}}
	if err := Validate(plan, sessions, profiles, Config{}); err != nil {
		t.Fatalf("factor-2 validation failed: %v", err)
	}
	if Validate(plan, sessions, profiles, Config{SLOFactor: 3}) == nil {
		t.Fatal("factor-3 validation should reject 3*50ms > 100ms")
	}
}
