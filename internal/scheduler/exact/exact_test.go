package exact

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nexus/internal/profiler"
	"nexus/internal/scheduler"
)

func linearProfile(id string, alpha, beta time.Duration) *profiler.Profile {
	return &profiler.Profile{
		ModelID: id, GPU: profiler.GTX1080Ti,
		Alpha: alpha, Beta: beta, MaxBatch: 64,
		MemBase: 1 << 30, MemPerItem: 4 << 20,
	}
}

func TestMinGPUsEmpty(t *testing.T) {
	n, err := MinGPUs(nil, nil, scheduler.Config{})
	if err != nil || n != 0 {
		t.Fatalf("MinGPUs(empty) = %d, %v", n, err)
	}
}

func TestMinGPUsSingle(t *testing.T) {
	profiles := map[string]*profiler.Profile{
		"m": linearProfile("m", time.Millisecond, 10*time.Millisecond),
	}
	sessions := []scheduler.Session{
		{ID: "s", ModelID: "m", SLO: 200 * time.Millisecond, Rate: 50},
	}
	n, err := MinGPUs(sessions, profiles, scheduler.Config{})
	if err != nil || n != 1 {
		t.Fatalf("MinGPUs = %d, %v; want 1", n, err)
	}
}

func TestMinGPUsTwoHeavySessions(t *testing.T) {
	// Each session fits one GPU alone (capacity ~360 r/s under the IP) but
	// two cannot share a duty cycle.
	profiles := map[string]*profiler.Profile{
		"m": linearProfile("m", 2*time.Millisecond, 20*time.Millisecond),
	}
	sessions := []scheduler.Session{
		{ID: "s1", ModelID: "m", SLO: 150 * time.Millisecond, Rate: 300},
		{ID: "s2", ModelID: "m", SLO: 150 * time.Millisecond, Rate: 300},
	}
	n, err := MinGPUs(sessions, profiles, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("MinGPUs = %d, want 2", n)
	}
}

func TestMinGPUsLightSessionsShare(t *testing.T) {
	profiles := map[string]*profiler.Profile{
		"m": linearProfile("m", time.Millisecond, 5*time.Millisecond),
	}
	sessions := []scheduler.Session{
		{ID: "s1", ModelID: "m", SLO: 300 * time.Millisecond, Rate: 30},
		{ID: "s2", ModelID: "m", SLO: 300 * time.Millisecond, Rate: 30},
		{ID: "s3", ModelID: "m", SLO: 300 * time.Millisecond, Rate: 30},
	}
	n, err := MinGPUs(sessions, profiles, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("MinGPUs = %d, want 1", n)
	}
}

func TestMinGPUsRejectsOversized(t *testing.T) {
	sessions := make([]scheduler.Session, MaxSessions+1)
	for i := range sessions {
		sessions[i] = scheduler.Session{ID: fmt.Sprint(i), ModelID: "m", SLO: time.Second, Rate: 1}
	}
	if _, err := MinGPUs(sessions, nil, scheduler.Config{}); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

// Property: the greedy squishy packer never beats the exact optimum, and is
// close to it — this is the validation role CPLEX played in the paper.
func TestPropertyGreedyVsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		profiles := map[string]*profiler.Profile{}
		nm := rng.Intn(3) + 1
		for i := 0; i < nm; i++ {
			id := fmt.Sprintf("m%d", i)
			profiles[id] = linearProfile(id,
				time.Duration(rng.Intn(2000)+200)*time.Microsecond,
				time.Duration(rng.Intn(15)+2)*time.Millisecond)
		}
		ns := rng.Intn(5) + 2
		sessions := make([]scheduler.Session, ns)
		for i := range sessions {
			mid := fmt.Sprintf("m%d", rng.Intn(nm))
			minSLO := 2 * profiles[mid].BatchLatency(1)
			slo := minSLO + time.Duration(rng.Intn(300)+20)*time.Millisecond
			// The residual IP assigns each session to exactly one GPU, so
			// cap its rate below single-GPU capacity T_i (as residual
			// loads are by construction, §6.1).
			b := profiles[mid].MaxBatchWithin(slo / 2)
			cap95 := profiles[mid].Throughput(b) * 0.95
			rate := (rng.Float64()*0.9 + 0.05) * cap95
			sessions[i] = scheduler.Session{
				ID:      fmt.Sprintf("s%d", i),
				ModelID: mid,
				SLO:     slo,
				Rate:    rate,
			}
		}
		cfg := scheduler.Config{}
		opt, err := MinGPUs(sessions, profiles, cfg)
		if err != nil {
			t.Logf("seed %d: exact error %v", seed, err)
			return false
		}
		greedyPlan, err := scheduler.ScheduleResidue(sessions, profiles, cfg)
		if err != nil {
			t.Logf("seed %d: greedy error %v", seed, err)
			return false
		}
		greedy := len(greedyPlan)
		if greedy < opt {
			t.Logf("seed %d: greedy %d beat exact %d — exact solver bug", seed, greedy, opt)
			return false
		}
		// Greedy should be within 2x + 1 of optimal on these small cases.
		if greedy > 2*opt+1 {
			t.Logf("seed %d: greedy %d vs optimal %d", seed, greedy, opt)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceThreePartitionValidation(t *testing.T) {
	if _, err := ReduceThreePartition(10, []int{3, 3}); err == nil {
		t.Error("non-multiple-of-3 accepted")
	}
	if _, err := ReduceThreePartition(10, []int{2, 4, 4}); err == nil {
		t.Error("item <= B/4 accepted")
	}
	if _, err := ReduceThreePartition(10, []int{3, 3, 3}); err == nil {
		t.Error("items not summing to n*B accepted")
	}
}

// TestFGSPReduction executes the Appendix A proof: a YES 3-PARTITION
// instance maps to a feasible FGSP instance and a NO instance to an
// infeasible one.
func TestFGSPReduction(t *testing.T) {
	// YES instance: B=100, triples (26,35,39), (30,33,37): both sum 100.
	yes := []int{26, 35, 39, 30, 33, 37}
	inst, err := ReduceThreePartition(100, yes)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := SolveFGSP(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("YES 3-PARTITION instance mapped to infeasible FGSP")
	}
	// NO instance: B=100, items where no partition into triples of sum 100
	// exists: {26, 26, 26, 48, 37, 37}: sums of triples can be
	// 26+26+26=78, 26+26+48=100!, hmm — pick a genuinely NO instance:
	// {30, 30, 30, 30, 40, 40}: sum = 200 = 2*100. Triples:
	// 30+30+40=100 twice -> YES. Use {27, 27, 27, 33, 43, 43}: sum 200.
	// possible triples: 27+27+43=97, 27+33+43=103, 27+27+33=87,
	// 33+43+43=119, 27+43+43=113 -> none equal 100 -> NO.
	no := []int{27, 27, 27, 33, 43, 43}
	inst, err = ReduceThreePartition(100, no)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = SolveFGSP(inst)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("NO 3-PARTITION instance mapped to feasible FGSP")
	}
}

// Property: random YES instances (constructed from valid triples) always
// solve; shuffling does not matter.
func TestPropertyFGSPYesInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bound := 100
		n := rng.Intn(3) + 1 // up to 9 items (search is exponential)
		var items []int
		for i := 0; i < n; i++ {
			// a + b + c = bound with each in (25, 50).
			a := rng.Intn(13) + 26 // 26..38
			b := rng.Intn(13) + 26
			c := bound - a - b
			if c <= 25 || c >= 50 {
				// Re-center: fall back to a known-valid triple.
				a, b, c = 30, 33, 37
			}
			items = append(items, a, b, c)
		}
		rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
		inst, err := ReduceThreePartition(bound, items)
		if err != nil {
			t.Logf("seed %d: reduce error %v (items %v)", seed, err, items)
			return false
		}
		ok, err := SolveFGSP(inst)
		if err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveFGSPMismatched(t *testing.T) {
	if _, err := SolveFGSP(FGSPInstance{Latencies: make([]time.Duration, 2), Bounds: make([]time.Duration, 3), GPUs: 1}); err == nil {
		t.Fatal("mismatched arrays accepted")
	}
}
