// Package exact solves the residual GPU scheduling integer program of §6.1
// exactly, by branch and bound. The paper used CPLEX for the same purpose:
// validating the greedy squishy bin packing on small instances ("computing
// the minimum number of GPUs for 25 sessions takes several hours"). This
// solver is practical for roughly a dozen sessions — enough to measure the
// greedy algorithm's optimality gap in tests and benchmarks.
//
// It also contains the Appendix A reduction from 3-PARTITION to the
// Fixed-rate GPU Scheduling Problem (FGSP), executable as code.
package exact

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nexus/internal/profiler"
	"nexus/internal/scheduler"
)

// MaxSessions bounds instance size; beyond this the search space (Bell
// numbers) is impractical.
const MaxSessions = 14

// MinGPUs returns the minimum number of GPUs needed to schedule the
// sessions under the IP of §6.1: each GPU's duty cycle equals the sum of
// its batch latencies (constraint e), batches cover the request rate
// (constraint g: b_i >= r_i * d), and worst-case latency d + ℓ_i(b_i)
// meets each SLO (constraint f). Like the paper's formulation, each session
// is assigned to exactly one GPU (constraint b), so every session's rate
// must be below single-GPU capacity — true of residual loads by
// construction; larger sessions must be reduced by ScheduleSaturate first.
func MinGPUs(sessions []scheduler.Session, profiles map[string]*profiler.Profile, cfg scheduler.Config) (int, error) {
	if len(sessions) == 0 {
		return 0, nil
	}
	if len(sessions) > MaxSessions {
		return 0, fmt.Errorf("exact: %d sessions exceeds limit %d", len(sessions), MaxSessions)
	}
	items := make([]item, 0, len(sessions))
	for _, s := range sessions {
		if err := s.Validate(); err != nil {
			return 0, err
		}
		if s.Rate == 0 {
			continue
		}
		p, ok := profiles[s.ModelID]
		if !ok {
			return 0, fmt.Errorf("exact: no profile for model %s", s.ModelID)
		}
		items = append(items, item{s: s, p: p})
	}
	if len(items) == 0 {
		return 0, nil
	}
	// Deterministic order, largest loads first (prunes faster).
	sort.Slice(items, func(i, j int) bool {
		li := items[i].s.Rate * items[i].p.BatchLatency(1).Seconds()
		lj := items[j].s.Rate * items[j].p.BatchLatency(1).Seconds()
		if li != lj {
			return li > lj
		}
		return items[i].s.ID < items[j].s.ID
	})
	// Upper bound from the greedy algorithm.
	greedy, err := scheduler.ScheduleResidue(sessionsOf(items), profiles, cfg)
	if err != nil {
		return 0, err
	}
	best := len(greedy)
	if best == 0 {
		best = len(items)
	}
	// Every item must be feasible alone, else the instance is unsolvable.
	for i := range items {
		if !feasibleSet([]*item{&items[i]}, cfg) {
			return 0, fmt.Errorf("exact: session %s infeasible on its own", items[i].s.ID)
		}
	}
	solver := &bb{items: items, cfg: cfg, best: best}
	solver.search(0, nil)
	return solver.best, nil
}

type item struct {
	s scheduler.Session
	p *profiler.Profile
}

func sessionsOf(items []item) []scheduler.Session {
	out := make([]scheduler.Session, len(items))
	for i := range items {
		out[i] = items[i].s
	}
	return out
}

type bb struct {
	items []item
	cfg   scheduler.Config
	best  int
}

// search assigns items[idx:] to bins, branching over existing bins plus one
// fresh bin (standard symmetry breaking).
func (b *bb) search(idx int, bins [][]*item) {
	if len(bins) >= b.best {
		return // cannot improve
	}
	if idx == len(b.items) {
		if len(bins) < b.best {
			b.best = len(bins)
		}
		return
	}
	it := &b.items[idx]
	for bi := range bins {
		bins[bi] = append(bins[bi], it)
		if feasibleSet(bins[bi], b.cfg) {
			b.search(idx+1, bins)
		}
		bins[bi] = bins[bi][:len(bins[bi])-1]
	}
	// Open a new bin.
	bins = append(bins, []*item{it})
	b.search(idx+1, bins)
}

// feasibleSet decides whether a set of sessions can share one GPU under the
// IP constraints. The duty cycle d must satisfy d = Σ ℓ_i(ceil(r_i d)):
// iterate to the least fixpoint from below, then check SLOs, batch bounds
// and memory.
func feasibleSet(set []*item, cfg scheduler.Config) bool {
	// Start from the smallest possible duty cycle (all batches = 1).
	d := time.Duration(0)
	for _, it := range set {
		d += it.p.BatchLatency(1)
	}
	for iter := 0; iter < 1000; iter++ {
		var next time.Duration
		for _, it := range set {
			nb := batchFor(it, d)
			if nb > it.p.MaxBatch {
				return false
			}
			next += it.p.BatchLatency(nb)
		}
		if next <= d {
			// Fixpoint (or shrink, which cannot happen for monotone ℓ).
			break
		}
		d = next
	}
	var mem int64
	for _, it := range set {
		nb := batchFor(it, d)
		if nb > it.p.MaxBatch {
			return false
		}
		if d+it.p.BatchLatency(nb) > it.s.SLO {
			return false
		}
		mem += it.p.MemBase + int64(nb)*it.p.MemPerItem
	}
	if cfg.GPUMemBytes > 0 && mem > cfg.GPUMemBytes {
		return false
	}
	return true
}

func batchFor(it *item, d time.Duration) int {
	nb := int(math.Ceil(d.Seconds()*it.s.Rate - 1e-12))
	if nb < 1 {
		nb = 1
	}
	return nb
}

// --- Appendix A: 3-PARTITION -> FGSP reduction ---------------------------

// FGSPInstance is the Fixed-rate GPU Scheduling Problem of Appendix A:
// partition models with fixed latencies L_i and latency bounds B_i into C
// sets such that within each set, D + L_i <= B_i where D = Σ L_i.
type FGSPInstance struct {
	Latencies []time.Duration // L_i
	Bounds    []time.Duration // B_i
	GPUs      int             // C
}

// ReduceThreePartition maps a 3-PARTITION instance (bound B, 3n integers
// a_i with B/4 < a_i < B/2 summing to n*B) to FGSP exactly as in the
// Appendix A proof: L_i = 2B + a_i, B_i = 9B + a_i, C = n.
func ReduceThreePartition(bound int, a []int) (FGSPInstance, error) {
	if len(a)%3 != 0 {
		return FGSPInstance{}, fmt.Errorf("exact: 3-PARTITION needs 3n items, got %d", len(a))
	}
	n := len(a) / 3
	sum := 0
	for _, x := range a {
		if 4*x <= bound || 2*x >= bound {
			return FGSPInstance{}, fmt.Errorf("exact: item %d outside (B/4, B/2)", x)
		}
		sum += x
	}
	if sum != n*bound {
		return FGSPInstance{}, fmt.Errorf("exact: items sum to %d, want n*B = %d", sum, n*bound)
	}
	inst := FGSPInstance{GPUs: n}
	unit := time.Millisecond
	for _, x := range a {
		inst.Latencies = append(inst.Latencies, time.Duration(2*bound+x)*unit)
		inst.Bounds = append(inst.Bounds, time.Duration(9*bound+x)*unit)
	}
	return inst, nil
}

// SolveFGSP decides an FGSP instance by exhaustive partition search with
// pruning. A set S is feasible iff D <= min_{i in S}(B_i - L_i), where
// D = Σ_{i in S} L_i. Only for small instances (<= MaxSessions models).
func SolveFGSP(inst FGSPInstance) (bool, error) {
	n := len(inst.Latencies)
	if n != len(inst.Bounds) {
		return false, fmt.Errorf("exact: mismatched FGSP arrays")
	}
	if n > MaxSessions {
		return false, fmt.Errorf("exact: FGSP with %d models exceeds limit %d", n, MaxSessions)
	}
	type set struct {
		duty     time.Duration // D = sum of member latencies
		minSlack time.Duration // min over members of (B_i - L_i)
	}
	sets := make([]set, 0, inst.GPUs)
	var assign func(i int) bool
	assign = func(i int) bool {
		if i == n {
			return true
		}
		l, b := inst.Latencies[i], inst.Bounds[i]
		if b < l {
			return false // never satisfiable
		}
		for si := range sets {
			old := sets[si]
			sets[si].duty += l
			if b-l < sets[si].minSlack {
				sets[si].minSlack = b - l
			}
			if sets[si].duty <= sets[si].minSlack && assign(i+1) {
				return true
			}
			sets[si] = old
		}
		if len(sets) < inst.GPUs {
			sets = append(sets, set{duty: l, minSlack: b - l})
			if sets[len(sets)-1].duty <= sets[len(sets)-1].minSlack && assign(i+1) {
				return true
			}
			sets = sets[:len(sets)-1]
		}
		return false
	}
	return assign(0), nil
}
