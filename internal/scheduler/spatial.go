package scheduler

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nexus/internal/profiler"
)

// Spatial packing (ROADMAP item 3). Temporal duty cycles charge a session
// for the whole GPU while its batch runs, even when the model's kernels
// cannot fill the SMs. A spatial placement instead pins the session to a
// fractional-SM compute slice (MPS/MIG-style): the slice runs the session's
// batches back to back, concurrently with its co-residents, and the session
// only pays for the fraction it holds. For small models under tight SLOs —
// where duty cycles are short and occupancy low — a slice of 1/8th GPU
// often serves the same load a temporal plan charges half a GPU for.
//
// The planner is conservative: each candidate slice is costed with the
// profiler's worst-case co-residency interference (every other slice of
// the device occupied and running), so a plan stays valid no matter how
// the slices land on physical devices.

// spatialWorstCo returns the largest number of co-resident partitions a
// slice of the given fraction can share a device with, at the configured
// granularity: the rest of the device carved into minimum-size slices.
func spatialWorstCo(frac float64, gran int) int {
	co := int(math.Round((1 - frac) * float64(gran)))
	if co < 0 {
		co = 0
	}
	return co
}

// sliceAlloc is one residual session pinned to a compute slice.
type sliceAlloc struct {
	session Session
	profile *profiler.Profile // full-device profile
	frac    float64
	batch   int
}

// spatialSlice finds the smallest slice fraction (at granularity gran) that
// can serve the session's residual load within its SLO under worst-case
// co-residency, and the batch size it runs at. ok is false when no slice —
// including the whole device — sustains the load.
func spatialSlice(s Session, p *profiler.Profile, gran int) (frac float64, batch int, ok bool) {
	for g := 1; g <= gran; g++ {
		f := float64(g) / float64(gran)
		q := p.SliceProfile(f, spatialWorstCo(f, gran))
		b, _, err := ResidualBatch(q, s.SLO, s.Rate)
		if err != nil {
			continue // slice too slow for even batch 1; try a bigger one
		}
		// Sustainable: the slice's service rate must cover the arrival
		// rate, or the queue grows without bound. Unlike a duty-cycle
		// share, the slice serves this session alone, so the bound is the
		// raw gather time b/rate — not ResidualBatch's SLO-clamped duty.
		// That difference is the whole point: a low-rate tight-SLO session
		// whose clamped duty cannot fit ℓ(b) (temporally unsustainable,
		// forcing a dedicated GPU) still sits comfortably on a slice that
		// is idle between its sparse batches.
		gather := time.Duration(float64(b) / s.Rate * float64(time.Second))
		if q.BatchLatency(b) <= gather {
			return f, b, true
		}
	}
	return 0, 0, false
}

// temporalOccupancy estimates the duty-cycle occupancy the session's
// residual load would cost under temporal packing: ℓ(b)/duty for a
// sustainable shared allocation, 1.0 (a dedicated node) otherwise. The
// hybrid policy compares this against the slice fraction.
func temporalOccupancy(s Session, p *profiler.Profile) float64 {
	b, duty, err := ResidualBatch(p, s.SLO, s.Rate)
	if err != nil {
		return 1
	}
	lat := p.BatchLatency(b)
	if lat > duty {
		return 1
	}
	return float64(lat) / float64(duty)
}

// ScheduleSpatial consumes residual sessions the configured placement
// assigns to compute slices and first-fit-decreasing packs their slices
// onto spatial nodes. Sessions left temporal (by policy or infeasibility)
// are returned for ScheduleResidue. Under PlaceTemporal it is a no-op.
func ScheduleSpatial(residue []Session, profiles map[string]*profiler.Profile, cfg Config) ([]GPUPlan, []Session, error) {
	if cfg.Placement == PlaceTemporal {
		return nil, residue, nil
	}
	gran := cfg.sliceGranularity()
	var chosen []sliceAlloc
	var kept []Session
	for _, s := range sortSessions(residue) {
		if s.Rate <= 0 {
			kept = append(kept, s)
			continue
		}
		p, ok := profiles[s.ModelID]
		if !ok {
			return nil, nil, fmt.Errorf("scheduler: no profile for model %s (session %s)", s.ModelID, s.ID)
		}
		frac, batch, ok := spatialSlice(s, p, gran)
		if !ok {
			kept = append(kept, s)
			continue
		}
		if cfg.Placement == PlaceHybrid && frac+1e-9 >= temporalOccupancy(s, p) {
			// The slice is no cheaper than the duty-cycle share; temporal
			// packing can also merge the session with others, so prefer it.
			kept = append(kept, s)
			continue
		}
		chosen = append(chosen, sliceAlloc{session: s, profile: p, frac: frac, batch: batch})
	}
	if len(chosen) == 0 {
		return nil, kept, nil
	}
	// First-fit decreasing by slice fraction; ties break by session ID for
	// determinism.
	sort.SliceStable(chosen, func(i, j int) bool {
		if chosen[i].frac != chosen[j].frac {
			return chosen[i].frac > chosen[j].frac
		}
		return chosen[i].session.ID < chosen[j].session.ID
	})
	type bin struct {
		used float64
		mem  int64
		node GPUPlan
	}
	var bins []*bin
	for _, a := range chosen {
		mem := a.profile.MemBase + int64(a.batch)*a.profile.MemPerItem
		var target *bin
		for _, b := range bins {
			if b.used+a.frac > 1+1e-9 {
				continue
			}
			if cfg.GPUMemBytes > 0 && b.mem+mem > cfg.GPUMemBytes {
				continue
			}
			target = b
			break
		}
		if target == nil {
			target = &bin{node: GPUPlan{Spatial: true}}
			bins = append(bins, target)
		}
		target.used += a.frac
		target.mem += mem
		target.node.Allocs = append(target.node.Allocs, Alloc{
			SessionID: a.session.ID,
			ModelID:   a.session.ModelID,
			Batch:     a.batch,
			Rate:      a.session.Rate,
			Slice:     a.frac,
		})
	}
	nodes := make([]GPUPlan, 0, len(bins))
	for _, b := range bins {
		nodes = append(nodes, b.node)
	}
	return nodes, kept, nil
}

// SliceDuty returns the batch-gather window a pinned slice runs at: the
// time to collect `batch` requests at `rate`, clamped so a batch started at
// the window's close still meets the SLO. The backend uses it as the flush
// timeout for spatial units.
func SliceDuty(lat, slo time.Duration, batch int, rate float64) time.Duration {
	gather := time.Duration(float64(batch) / rate * float64(time.Second))
	if m := slo - lat; gather > m {
		gather = m
	}
	if gather < 0 {
		gather = 0
	}
	return gather
}
