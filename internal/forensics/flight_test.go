package forensics

import (
	"bytes"
	"testing"
	"time"

	"nexus/internal/telemetry"
	"nexus/internal/trace"
)

const ms = time.Millisecond

func alert(rule string) telemetry.Alert {
	return telemetry.Alert{Rule: rule, Target: "s", State: "firing", Value: 9.5}
}

// seededPlanes builds a tracer and audit log with records on both sides of
// the 5s default capture window around a trigger at t=10s.
func seededPlanes() (*trace.Tracer, *trace.Audit) {
	tr := trace.New(64)
	// Outside the [5s, 10s] window.
	tr.Record(trace.Event{At: 2 * time.Second, Kind: trace.Arrive, ReqID: 1, Session: "s"})
	// Inside.
	tr.Record(trace.Event{At: 7 * time.Second, Kind: trace.Arrive, ReqID: 2, Session: "s"})
	tr.Record(trace.Event{At: 8 * time.Second, Kind: trace.Complete, ReqID: 2, Session: "s"})

	audit := trace.NewAudit()
	audit.RecordChaos(trace.ChaosRecord{AtMS: 1000, Kind: "outage", Backend: "be0", To: "down"})
	audit.RecordChaos(trace.ChaosRecord{AtMS: 9000, Kind: "outage", Backend: "be1", To: "down"})
	audit.RecordPlacement(trace.PlacementRecord{Epoch: 1, AtMS: 9500, Node: "plan-0"})
	audit.RecordPlanDiff(trace.PlanDiffRecord{Epoch: 1, AtMS: 9500, Cause: "periodic"})
	audit.RecordPlanDiff(trace.PlanDiffRecord{Epoch: 0, AtMS: 100, Cause: "initial"})
	return tr, audit
}

func TestTriggerCapturesWindow(t *testing.T) {
	tr, audit := seededPlanes()
	r := New(Config{})
	r.ObserveSample(telemetry.Snapshot{At: 4 * time.Second, AtMS: 4000})
	r.ObserveSample(telemetry.Snapshot{At: 9 * time.Second, AtMS: 9000})
	r.Trigger(10*time.Second, alert("slo-burn-rate"), tr, audit)

	dumps := r.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Rule != "slo-burn-rate" || d.AtMS != 10000 || d.WindowMS != 5000 {
		t.Fatalf("dump header %+v", d)
	}
	if len(d.Spans) != 2 || d.Spans[0].ReqID != 2 {
		t.Fatalf("spans %+v, want the two in-window req-2 events", d.Spans)
	}
	if len(d.Chaos) != 1 || d.Chaos[0].Backend != "be1" {
		t.Fatalf("chaos %+v, want only the 9s outage", d.Chaos)
	}
	if len(d.PlanDiffs) != 1 || d.PlanDiffs[0].Cause != "periodic" {
		t.Fatalf("plan diffs %+v, want only the 9.5s record", d.PlanDiffs)
	}
	if len(d.Placements) != 1 {
		t.Fatalf("placements %+v, want one", d.Placements)
	}
	// The 4s sample is outside [5s, 10s] but survives the recorder's own
	// trim (trim is relative to the latest sample); the window filter at
	// dump time must still exclude it.
	if len(d.Samples) != 1 || d.Samples[0].AtMS != 9000 {
		t.Fatalf("samples %+v, want only the 9s snapshot", d.Samples)
	}
}

func TestTriggerCooldownAndCap(t *testing.T) {
	tr, audit := seededPlanes()
	r := New(Config{Window: time.Second, Cooldown: 2 * time.Second, MaxDumps: 2})
	r.Trigger(10*time.Second, alert("a"), tr, audit)
	// Inside the cooldown: suppressed.
	r.Trigger(11*time.Second, alert("b"), tr, audit)
	if got := len(r.Dumps()); got != 1 {
		t.Fatalf("cooldown leaked: %d dumps", got)
	}
	// Past the cooldown: captured (hits the cap).
	r.Trigger(13*time.Second, alert("c"), tr, audit)
	// Past cooldown again but over MaxDumps: suppressed.
	r.Trigger(16*time.Second, alert("d"), tr, audit)
	if got := len(r.Dumps()); got != 2 {
		t.Fatalf("got %d dumps, want 2", got)
	}
	if r.Suppressed() != 2 {
		t.Fatalf("suppressed %d, want 2", r.Suppressed())
	}
	if r.Dumps()[1].Rule != "c" {
		t.Fatalf("second dump rule %q, want c", r.Dumps()[1].Rule)
	}
}

func TestObserveSampleTrimsWindow(t *testing.T) {
	r := New(Config{Window: 2 * time.Second})
	for i := 0; i <= 10; i++ {
		at := time.Duration(i) * time.Second
		r.ObserveSample(telemetry.Snapshot{At: at, AtMS: float64(at) / float64(ms)})
	}
	// Window 2s behind the 10s sample: 8s, 9s, 10s survive.
	if len(r.samples) != 3 || r.samples[0].AtMS != 8000 {
		t.Fatalf("trim kept %d samples starting %v, want 3 from 8s", len(r.samples), r.samples[0].AtMS)
	}
}

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	r.ObserveSample(telemetry.Snapshot{})
	r.Trigger(time.Second, alert("x"), nil, nil)
	if r.Dumps() != nil || r.Suppressed() != 0 {
		t.Fatal("nil recorder retained state")
	}
}

func TestDumpsJSONLRoundTrip(t *testing.T) {
	tr, audit := seededPlanes()
	r := New(Config{})
	r.ObserveSample(telemetry.Snapshot{At: 9 * time.Second, AtMS: 9000,
		Counters: map[string]float64{"session_good_total|session=s": 12}})
	r.Trigger(10*time.Second, alert("slo-burn-rate"), tr, audit)

	var a bytes.Buffer
	if err := WriteDumpsJSONL(&a, r.Dumps()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDumpsJSONL(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("round trip read %d dumps, want 1", len(back))
	}
	if back[0].Samples[0].At != 9*time.Second {
		t.Fatalf("sample At not reconstructed: %v", back[0].Samples[0].At)
	}
	// Re-serializing the decoded bundles must be byte-identical: the wire
	// form carries everything.
	var b bytes.Buffer
	if err := WriteDumpsJSONL(&b, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestDumpWriteText(t *testing.T) {
	tr, audit := seededPlanes()
	// Give the captured spans a full attributable request.
	tr.Record(trace.Event{At: 8500 * ms, Kind: trace.Arrive, ReqID: 9, Session: "s"})
	tr.Record(trace.Event{At: 8600 * ms, Kind: trace.Enqueue, ReqID: 9, Session: "s", Backend: "be0", Unit: "u"})
	tr.Record(trace.Event{At: 8700 * ms, Kind: trace.Execute, ReqID: 9, Session: "s", Backend: "be0", Unit: "u", Dur: 100 * ms, Inc: 1})
	tr.Record(trace.Event{At: 8900 * ms, Kind: trace.Complete, ReqID: 9, Session: "s"})
	r := New(Config{})
	r.Trigger(10*time.Second, alert("slo-burn-rate"), tr, audit)

	var sb bytes.Buffer
	if err := r.Dumps()[0].WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"dump at 10000.0ms: slo-burn-rate(s)",
		"chaos edges in window:",
		"outage",
		"cause=periodic",
		"p99 blame breakdown",
		"exemplar=req 9",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("dump text missing %q:\n%s", want, out)
		}
	}
}
