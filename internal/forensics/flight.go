// Package forensics is the anomaly-triggered capture layer on top of the
// trace and telemetry planes: a flight recorder that rides the always-on
// bounded buffers the deployment already maintains (the tracer's span ring,
// the audit log, the chaos timeline) plus a short time-trimmed tail of
// metric snapshots, and — when the alert engine reports a new firing
// transition — freezes the last N virtual seconds of all of them into one
// time-correlated dump bundle.
//
// The recorder itself never touches the dispatch hot path: spans keep going
// into the existing zero-alloc tracer ring, and the recorder only reads
// them at dump time. Its own bookkeeping runs once per telemetry sampling
// tick on the simulation goroutine, so enabled forensics stay deterministic
// and the steady-state dispatch path stays allocation-free.
package forensics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"nexus/internal/telemetry"
	"nexus/internal/trace"
)

// DefaultWindow is the capture horizon before an anomaly.
const DefaultWindow = 5 * time.Second

// DefaultMaxDumps bounds how many bundles one run retains.
const DefaultMaxDumps = 8

// Config enables the flight recorder on a deployment.
type Config struct {
	// Window is how far back a dump reaches (0 = DefaultWindow).
	Window time.Duration
	// MaxDumps bounds retained bundles; triggers past it are counted, not
	// captured (0 = DefaultMaxDumps).
	MaxDumps int
	// Cooldown suppresses triggers arriving within this span of the last
	// captured dump — an incident typically fires several rules in a burst,
	// and one bundle per burst is the useful granularity (0 = Window).
	Cooldown time.Duration
}

func (c Config) window() time.Duration {
	if c.Window <= 0 {
		return DefaultWindow
	}
	return c.Window
}

func (c Config) maxDumps() int {
	if c.MaxDumps <= 0 {
		return DefaultMaxDumps
	}
	return c.MaxDumps
}

func (c Config) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return c.window()
	}
	return c.Cooldown
}

// Dump is one time-correlated capture bundle: the alert that triggered it
// and every plane's records from the capture window — request spans, epoch
// placements and plan diffs, chaos-timeline edges, and metric snapshots —
// all bounded by the same [at-window, at] interval.
type Dump struct {
	AtMS     float64 `json:"at_ms"`
	Rule     string  `json:"rule"`
	Target   string  `json:"target,omitempty"`
	Value    float64 `json:"value,omitempty"`
	Detail   string  `json:"detail,omitempty"`
	WindowMS float64 `json:"window_ms"`

	Spans      []trace.Event           `json:"spans,omitempty"`
	Placements []trace.PlacementRecord `json:"placements,omitempty"`
	PlanDiffs  []trace.PlanDiffRecord  `json:"plan_diffs,omitempty"`
	Chaos      []trace.ChaosRecord     `json:"chaos,omitempty"`
	Samples    []telemetry.Snapshot    `json:"samples,omitempty"`
}

// Recorder is the flight recorder. Like the tracer and audit log, a nil
// *Recorder is a valid no-op, so wiring records unconditionally.
type Recorder struct {
	cfg        Config
	samples    []telemetry.Snapshot // trimmed to the capture window
	dumps      []Dump
	lastDump   time.Duration
	hasDumped  bool
	suppressed int // triggers lost to cooldown or the dump cap
}

// New creates a flight recorder.
func New(cfg Config) *Recorder { return &Recorder{cfg: cfg} }

// ObserveSample appends one metric snapshot and trims the tail to the
// capture window. Runs once per telemetry tick on the simulation goroutine.
func (r *Recorder) ObserveSample(s telemetry.Snapshot) {
	if r == nil {
		return
	}
	r.samples = append(r.samples, s)
	cut := s.At - r.cfg.window()
	keep := 0
	for keep < len(r.samples) && r.samples[keep].At < cut {
		keep++
	}
	if keep > 0 {
		n := copy(r.samples, r.samples[keep:])
		// Release the shifted-out tail so retained snapshots don't pin it.
		tail := r.samples[n:]
		for i := range tail {
			tail[i] = telemetry.Snapshot{}
		}
		r.samples = r.samples[:n]
	}
}

// Trigger captures one dump bundle for a firing alert, reading the last
// window of spans from the tracer and of control-plane records from the
// audit log. Triggers inside the cooldown of the previous capture, or past
// the dump cap, are counted as suppressed instead.
func (r *Recorder) Trigger(at time.Duration, alert telemetry.Alert, tracer *trace.Tracer, audit *trace.Audit) {
	if r == nil {
		return
	}
	if r.hasDumped && at-r.lastDump < r.cfg.cooldown() {
		r.suppressed++
		return
	}
	if len(r.dumps) >= r.cfg.maxDumps() {
		r.suppressed++
		return
	}
	window := r.cfg.window()
	from := at - window
	d := Dump{
		AtMS: trace.MS(at), Rule: alert.Rule, Target: alert.Target,
		Value: alert.Value, Detail: alert.Detail, WindowMS: trace.MS(window),
	}
	for _, e := range tracer.Events() {
		if e.At >= from && e.At <= at {
			d.Spans = append(d.Spans, e)
		}
	}
	fromMS, atMS := trace.MS(from), trace.MS(at)
	for _, p := range audit.Placements() {
		if p.AtMS >= fromMS && p.AtMS <= atMS {
			d.Placements = append(d.Placements, p)
		}
	}
	for _, pd := range audit.PlanDiffs() {
		if pd.AtMS >= fromMS && pd.AtMS <= atMS {
			d.PlanDiffs = append(d.PlanDiffs, pd)
		}
	}
	for _, c := range audit.Chaos() {
		if c.AtMS >= fromMS && c.AtMS <= atMS {
			d.Chaos = append(d.Chaos, c)
		}
	}
	for _, s := range r.samples {
		if s.At >= from && s.At <= at {
			d.Samples = append(d.Samples, s)
		}
	}
	r.dumps = append(r.dumps, d)
	r.lastDump, r.hasDumped = at, true
}

// Dumps returns the captured bundles in trigger order.
func (r *Recorder) Dumps() []Dump {
	if r == nil {
		return nil
	}
	return r.dumps
}

// Suppressed returns how many triggers were dropped by cooldown or the cap.
func (r *Recorder) Suppressed() int {
	if r == nil {
		return 0
	}
	return r.suppressed
}

// WriteDumpsJSONL writes dump bundles one JSON object per line. Go's JSON
// encoder emits map keys sorted, so output is byte-deterministic.
func WriteDumpsJSONL(w io.Writer, dumps []Dump) error {
	enc := json.NewEncoder(w)
	for i := range dumps {
		if err := enc.Encode(&dumps[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadDumpsJSONL reads bundles written by WriteDumpsJSONL, reconstructing
// snapshot virtual timestamps from at_ms.
func ReadDumpsJSONL(rd io.Reader) ([]Dump, error) {
	var out []Dump
	dec := json.NewDecoder(bufio.NewReader(rd))
	for {
		var d Dump
		if err := dec.Decode(&d); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("forensics: parsing dump JSONL: %w", err)
		}
		for i := range d.Samples {
			d.Samples[i].At = time.Duration(d.Samples[i].AtMS * float64(time.Millisecond))
		}
		out = append(out, d)
	}
}

// WriteText renders one dump bundle for terminals: the trigger header, the
// chaos edges and plan changes inside the window, the per-session blame
// breakdown reconstructed from the captured spans, and the sample count.
func (d *Dump) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "dump at %.1fms: %s(%s) value=%.2f window=%.0fms\n",
		d.AtMS, d.Rule, d.Target, d.Value, d.WindowMS); err != nil {
		return err
	}
	if d.Detail != "" {
		if _, err := fmt.Fprintf(w, "  %s\n", d.Detail); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  captured: %d spans, %d placements, %d plan diffs, %d chaos edges, %d samples\n",
		len(d.Spans), len(d.Placements), len(d.PlanDiffs), len(d.Chaos), len(d.Samples)); err != nil {
		return err
	}
	if len(d.Chaos) > 0 {
		if _, err := fmt.Fprintln(w, "  chaos edges in window:"); err != nil {
			return err
		}
		for _, c := range d.Chaos {
			line := fmt.Sprintf("    %9.1fms %-10s", c.AtMS, c.Kind)
			if c.Backend != "" {
				line += " backend=" + c.Backend
			}
			if c.Frontend != "" {
				line += " frontend=" + c.Frontend
			}
			if c.From != "" || c.To != "" {
				line += fmt.Sprintf(" %s->%s", c.From, c.To)
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	for _, pd := range d.PlanDiffs {
		if err := trace.WritePlanDiffText(w, pd); err != nil {
			return err
		}
	}
	if blames := trace.SessionBlames(trace.AttributeBlame(d.Spans)); len(blames) > 0 {
		if err := trace.WriteBlameReport(w, blames); err != nil {
			return err
		}
	}
	return nil
}
