// Package faults is a deterministic, seeded fault-injection engine for a
// simulated Nexus cluster. A Script of timed fault events — permanent
// crashes, transient crashes with restart, straggler slowdowns, and
// network-delay spikes — is scheduled against a running deployment on the
// simulation clock, so a chaos experiment is exactly as reproducible as a
// fault-free one: same seed, same script, same event sequence, byte-equal
// results at any test parallelism.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"nexus/internal/simclock"
)

// Kind is the fault type of one event.
type Kind int

const (
	// Crash kills a backend. Duration 0 is a permanent crash; Duration > 0
	// restarts the node that much later (transient failure).
	Crash Kind = iota
	// Straggler multiplies a backend GPU's execution time by Factor for
	// Duration (0 = until the end of the run).
	Straggler
	// NetDelay adds Delay to every frontend dispatch hop for Duration
	// (0 = until the end of the run).
	NetDelay
)

// String names the kind for logs and tables.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Straggler:
		return "straggler"
	case NetDelay:
		return "netdelay"
	default:
		return "unknown"
	}
}

// Event is one scripted fault.
type Event struct {
	// At is when the fault fires, in virtual time from the start of the
	// run (including warmup).
	At   time.Duration
	Kind Kind
	// Backend targets a specific backend ID; empty picks one of the
	// backends in use at fire time, via the injector's seeded RNG.
	// Ignored by NetDelay.
	Backend string
	// Duration bounds the fault (see each Kind); 0 = permanent.
	Duration time.Duration
	// Factor is the Straggler slowdown multiplier (e.g. 4 = 4x slower).
	Factor float64
	// Delay is the NetDelay spike added per dispatch hop.
	Delay time.Duration
}

// Script is a set of fault events.
type Script []Event

// Validate rejects malformed scripts before anything is scheduled.
func (s Script) Validate() error {
	for i, e := range s {
		if e.At < 0 {
			return fmt.Errorf("faults: event %d fires at negative time %v", i, e.At)
		}
		if e.Duration < 0 {
			return fmt.Errorf("faults: event %d has negative duration %v", i, e.Duration)
		}
		switch e.Kind {
		case Crash:
		case Straggler:
			if e.Factor <= 1 {
				return fmt.Errorf("faults: straggler event %d needs factor > 1, got %v", i, e.Factor)
			}
		case NetDelay:
			if e.Delay <= 0 {
				return fmt.Errorf("faults: netdelay event %d needs a positive delay, got %v", i, e.Delay)
			}
		default:
			return fmt.Errorf("faults: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Target is the fault surface of a running deployment
// (cluster.Deployment implements it).
type Target interface {
	// BackendIDs returns the in-use backend IDs, sorted.
	BackendIDs() []string
	// CrashBackend kills a live backend; false if it is unknown or dead.
	CrashBackend(id string) bool
	// RestartBackend revives a dead backend; false if unknown or alive.
	RestartBackend(id string) bool
	// SlowBackend sets a backend GPU's slowdown factor (≤1 clears it).
	SlowBackend(id string, factor float64) bool
	// SetExtraNetDelay adds d to every dispatch hop (≤0 clears it).
	SetExtraNetDelay(d time.Duration)
}

// Injection records one fired fault for the experiment log.
type Injection struct {
	At      time.Duration
	Kind    Kind
	Backend string // resolved target ("" for NetDelay)
	Applied bool   // false when the target no longer existed
}

// Injector schedules fault scripts against a target on the sim clock.
type Injector struct {
	clock  *simclock.Clock
	target Target
	rng    *rand.Rand
	log    []Injection
	// netUntil tracks the furthest end of any active NetDelay window, so
	// overlapping spikes do not clear each other early.
	netUntil time.Duration
}

// New creates an injector. The seed drives random target selection only;
// scripts with explicit backend IDs are seed-independent.
func New(clock *simclock.Clock, target Target, seed int64) *Injector {
	return &Injector{clock: clock, target: target, rng: rand.New(rand.NewSource(seed))}
}

// Schedule validates a script and arms every event on the clock. Call
// before (or during) the run; events in the past of the clock fire on the
// next clock step.
func (in *Injector) Schedule(script Script) error {
	if err := in.Validate(script); err != nil {
		return err
	}
	for _, e := range script {
		e := e
		in.clock.At(e.At, func() { in.fire(e) })
	}
	return nil
}

// Validate is Script.Validate, exposed on the injector for symmetry.
func (in *Injector) Validate(script Script) error { return script.Validate() }

// Log returns the injections fired so far, in firing order.
func (in *Injector) Log() []Injection {
	return append([]Injection(nil), in.log...)
}

// fire applies one event at its scheduled time.
func (in *Injector) fire(e Event) {
	now := in.clock.Now()
	switch e.Kind {
	case Crash:
		id, ok := in.resolve(e.Backend)
		applied := ok && in.target.CrashBackend(id)
		in.log = append(in.log, Injection{At: now, Kind: e.Kind, Backend: id, Applied: applied})
		if applied && e.Duration > 0 {
			in.clock.At(now+e.Duration, func() {
				in.target.RestartBackend(id)
			})
		}
	case Straggler:
		id, ok := in.resolve(e.Backend)
		applied := ok && in.target.SlowBackend(id, e.Factor)
		in.log = append(in.log, Injection{At: now, Kind: e.Kind, Backend: id, Applied: applied})
		if applied && e.Duration > 0 {
			in.clock.At(now+e.Duration, func() {
				in.target.SlowBackend(id, 1)
			})
		}
	case NetDelay:
		in.target.SetExtraNetDelay(e.Delay)
		in.log = append(in.log, Injection{At: now, Kind: e.Kind, Applied: true})
		if e.Duration > 0 {
			until := now + e.Duration
			if until > in.netUntil {
				in.netUntil = until
			}
			in.clock.At(until, func() {
				if in.clock.Now() >= in.netUntil {
					in.target.SetExtraNetDelay(0)
				}
			})
		}
	}
}

// resolve turns an event's backend field into a concrete target: the named
// backend, or a seeded-random pick over the sorted in-use set.
func (in *Injector) resolve(explicit string) (string, bool) {
	if explicit != "" {
		return explicit, true
	}
	ids := in.target.BackendIDs()
	if len(ids) == 0 {
		return "", false
	}
	sort.Strings(ids) // defensive: determinism must not rely on the target
	return ids[in.rng.Intn(len(ids))], true
}
