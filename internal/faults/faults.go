// Package faults is a deterministic, seeded fault-injection engine for a
// simulated Nexus cluster. A Script of timed fault events — permanent
// crashes, transient crashes with restart, straggler slowdowns,
// network-delay spikes, control-plane outages, asymmetric network
// partitions, and traffic surges — is scheduled against a running
// deployment on the simulation clock, so a chaos experiment is exactly as
// reproducible as a fault-free one: same seed, same script, same event
// sequence, byte-equal results at any test parallelism.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"nexus/internal/simclock"
)

// Kind is the fault type of one event.
type Kind int

const (
	// Crash kills a backend. Duration 0 is a permanent crash; Duration > 0
	// restarts the node that much later (transient failure).
	Crash Kind = iota
	// Straggler multiplies a backend GPU's execution time by Factor for
	// Duration (0 = until the end of the run).
	Straggler
	// NetDelay adds Delay to every frontend dispatch hop for Duration
	// (0 = permanent: the delay is pinned until explicitly cleared).
	NetDelay
	// SchedulerOutage takes the global scheduler down for Duration (0 =
	// rest of the run): no epoch planning, no route pushes, no lease
	// monitoring. The data plane keeps serving on its last routing table.
	SchedulerOutage
	// Partition cuts one direction-pair of the network asymmetrically for
	// Duration (0 = rest of the run). Link selects which hop: ControlLink
	// severs scheduler<->backend (heartbeats are lost while the backend
	// still serves, exercising false-positive failure detection and
	// incarnation-checked reconciliation at heal time); DataLink severs
	// frontend<->backend (dispatches fail while the scheduler still sees a
	// healthy node, exercising retry budgets and circuit breakers).
	Partition
	// Surge multiplies a session's offered arrival rate by Factor for
	// Duration (0 = rest of the run). Session selects the target; empty
	// surges every session.
	Surge
	// Noop is never scripted: the injector records one Noop injection when
	// Schedule is called with an empty script, so chaos experiment logs
	// always reconcile with the scripts that produced them.
	Noop
)

// String names the kind for logs and tables.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Straggler:
		return "straggler"
	case NetDelay:
		return "netdelay"
	case SchedulerOutage:
		return "schedoutage"
	case Partition:
		return "partition"
	case Surge:
		return "surge"
	case Noop:
		return "noop"
	default:
		return "unknown"
	}
}

// Link selects which hop a Partition event severs.
type Link int

const (
	// ControlLink is the scheduler<->backend hop: heartbeats and control
	// RPCs are lost, the data plane is untouched.
	ControlLink Link = iota
	// DataLink is the frontend<->backend hop: dispatches to the backend
	// fail, heartbeats still flow.
	DataLink
)

// String names the link for logs.
func (l Link) String() string {
	switch l {
	case ControlLink:
		return "control"
	case DataLink:
		return "data"
	default:
		return "unknown"
	}
}

// Event is one scripted fault.
type Event struct {
	// At is when the fault fires, in virtual time from the start of the
	// run (including warmup).
	At   time.Duration
	Kind Kind
	// Backend targets a specific backend ID; empty picks one of the
	// backends in use at fire time, via the injector's seeded RNG.
	// Ignored by NetDelay, SchedulerOutage, and Surge.
	Backend string
	// Duration bounds the fault (see each Kind); 0 = permanent.
	Duration time.Duration
	// Factor is the Straggler slowdown multiplier (e.g. 4 = 4x slower) or
	// the Surge rate multiplier (e.g. 3 = 3x the offered rate).
	Factor float64
	// Delay is the NetDelay spike added per dispatch hop.
	Delay time.Duration
	// Link selects the severed hop for Partition events.
	Link Link
	// Session targets a Surge at one session; empty surges every session.
	Session string
}

// Script is a set of fault events.
type Script []Event

// Validate rejects malformed scripts before anything is scheduled.
func (s Script) Validate() error {
	for i, e := range s {
		if e.At < 0 {
			return fmt.Errorf("faults: event %d fires at negative time %v", i, e.At)
		}
		if e.Duration < 0 {
			return fmt.Errorf("faults: event %d has negative duration %v", i, e.Duration)
		}
		switch e.Kind {
		case Crash, SchedulerOutage:
		case Straggler:
			if e.Factor <= 1 {
				return fmt.Errorf("faults: straggler event %d needs factor > 1, got %v", i, e.Factor)
			}
		case NetDelay:
			if e.Delay <= 0 {
				return fmt.Errorf("faults: netdelay event %d needs a positive delay, got %v", i, e.Delay)
			}
		case Partition:
			if e.Link != ControlLink && e.Link != DataLink {
				return fmt.Errorf("faults: partition event %d has unknown link %d", i, int(e.Link))
			}
		case Surge:
			if e.Factor <= 0 {
				return fmt.Errorf("faults: surge event %d needs factor > 0, got %v", i, e.Factor)
			}
		default:
			return fmt.Errorf("faults: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Target is the fault surface of a running deployment
// (cluster.Deployment implements it).
type Target interface {
	// BackendIDs returns the in-use backend IDs, sorted.
	BackendIDs() []string
	// CrashBackend kills a live backend; false if it is unknown or dead.
	CrashBackend(id string) bool
	// RestartBackend revives a dead backend; false if unknown or alive.
	RestartBackend(id string) bool
	// SlowBackend sets a backend GPU's slowdown factor (≤1 clears it).
	SlowBackend(id string, factor float64) bool
	// SetExtraNetDelay adds d to every dispatch hop (≤0 clears it).
	SetExtraNetDelay(d time.Duration)
}

// DegradedTarget is the extended fault surface for control-plane and
// admission faults (SchedulerOutage, Partition, Surge). Targets that do
// not implement it record those injections as not applied, so old targets
// keep working against new scripts.
type DegradedTarget interface {
	// SetSchedulerOutage takes the global scheduler down (true) or brings
	// it back up (false, triggering recovery); false when the transition
	// was not applicable (already in that state).
	SetSchedulerOutage(down bool) bool
	// CutLink severs (cut) or heals one directional link pair to a
	// backend; false when the backend is unknown or the link was already
	// in that state.
	CutLink(link Link, backendID string, cut bool) bool
	// SetRateMultiplier scales a session's offered arrival rate (session
	// "" scales every session; factor 1 restores nominal). False when the
	// target cannot modulate its workload.
	SetRateMultiplier(session string, factor float64) bool
}

// Injection records one fired fault for the experiment log.
type Injection struct {
	At      time.Duration
	Kind    Kind
	Backend string // resolved target ("" for non-backend faults)
	Applied bool   // false when the fault could not be applied
	// Note explains an unapplied injection ("no live backends", "target
	// does not support partitions", "empty script"), so experiment logs
	// reconcile with their scripts instead of silently dropping events.
	Note string
}

// Injector schedules fault scripts against a target on the sim clock.
type Injector struct {
	clock  *simclock.Clock
	target Target
	rng    *rand.Rand
	log    []Injection
	// netUntil tracks the furthest end of any active bounded NetDelay
	// window, so overlapping spikes do not clear each other early.
	netUntil time.Duration
	// netPinned marks an active permanent (Duration 0) NetDelay spike: the
	// delay stays applied until ClearNetDelay, no matter how many earlier
	// bounded windows expire after it fired.
	netPinned bool
}

// New creates an injector. The seed drives random target selection only;
// scripts with explicit backend IDs are seed-independent.
func New(clock *simclock.Clock, target Target, seed int64) *Injector {
	return &Injector{clock: clock, target: target, rng: rand.New(rand.NewSource(seed))}
}

// Schedule validates a script and arms every event on the clock. Call
// before (or during) the run; events in the past of the clock fire on the
// next clock step. An empty script arms nothing but records one Noop
// injection, so a log that should have N entries never silently has none.
func (in *Injector) Schedule(script Script) error {
	if err := in.Validate(script); err != nil {
		return err
	}
	if len(script) == 0 {
		in.log = append(in.log, Injection{
			At: in.clock.Now(), Kind: Noop, Applied: false, Note: "empty script",
		})
		return nil
	}
	for _, e := range script {
		e := e
		in.clock.At(e.At, func() { in.fire(e) })
	}
	return nil
}

// Validate is Script.Validate, exposed on the injector for symmetry.
func (in *Injector) Validate(script Script) error { return script.Validate() }

// Log returns the injections fired so far, in firing order.
func (in *Injector) Log() []Injection {
	return append([]Injection(nil), in.log...)
}

// ClearNetDelay explicitly clears any injected network delay, including a
// pinned permanent spike.
func (in *Injector) ClearNetDelay() {
	in.netPinned = false
	in.netUntil = 0
	in.target.SetExtraNetDelay(0)
}

// record appends one injection to the log.
func (in *Injector) record(at time.Duration, kind Kind, backend string, applied bool, note string) {
	in.log = append(in.log, Injection{At: at, Kind: kind, Backend: backend, Applied: applied, Note: note})
}

// fire applies one event at its scheduled time.
func (in *Injector) fire(e Event) {
	now := in.clock.Now()
	switch e.Kind {
	case Crash:
		id, ok := in.resolve(e.Backend)
		applied := ok && in.target.CrashBackend(id)
		in.record(now, e.Kind, id, applied, in.resolveNote(ok, applied))
		if applied && e.Duration > 0 {
			in.clock.At(now+e.Duration, func() {
				in.target.RestartBackend(id)
			})
		}
	case Straggler:
		id, ok := in.resolve(e.Backend)
		applied := ok && in.target.SlowBackend(id, e.Factor)
		in.record(now, e.Kind, id, applied, in.resolveNote(ok, applied))
		if applied && e.Duration > 0 {
			in.clock.At(now+e.Duration, func() {
				in.target.SlowBackend(id, 1)
			})
		}
	case NetDelay:
		in.target.SetExtraNetDelay(e.Delay)
		in.record(now, e.Kind, "", true, "")
		if e.Duration == 0 {
			// Permanent spike: pin the delay so the expiry of any earlier
			// bounded window cannot clear it.
			in.netPinned = true
			return
		}
		until := now + e.Duration
		if until > in.netUntil {
			in.netUntil = until
		}
		in.clock.At(until, func() {
			if !in.netPinned && in.clock.Now() >= in.netUntil {
				in.target.SetExtraNetDelay(0)
			}
		})
	case SchedulerOutage:
		dt, ok := in.target.(DegradedTarget)
		applied := ok && dt.SetSchedulerOutage(true)
		in.record(now, e.Kind, "", applied, in.degradedNote(ok, applied))
		if applied && e.Duration > 0 {
			in.clock.At(now+e.Duration, func() {
				dt.SetSchedulerOutage(false)
			})
		}
	case Partition:
		dt, dok := in.target.(DegradedTarget)
		if !dok {
			in.record(now, e.Kind, e.Backend, false, "target does not support degraded faults")
			return
		}
		id, ok := in.resolve(e.Backend)
		applied := ok && dt.CutLink(e.Link, id, true)
		in.record(now, e.Kind, id, applied, in.resolveNote(ok, applied))
		if applied && e.Duration > 0 {
			in.clock.At(now+e.Duration, func() {
				dt.CutLink(e.Link, id, false)
			})
		}
	case Surge:
		dt, ok := in.target.(DegradedTarget)
		applied := ok && dt.SetRateMultiplier(e.Session, e.Factor)
		in.record(now, e.Kind, "", applied, in.degradedNote(ok, applied))
		if applied && e.Duration > 0 {
			in.clock.At(now+e.Duration, func() {
				dt.SetRateMultiplier(e.Session, 1)
			})
		}
	}
}

// resolveNote explains an unapplied backend-targeted injection.
func (in *Injector) resolveNote(resolved, applied bool) string {
	switch {
	case applied:
		return ""
	case !resolved:
		return "no live backends"
	default:
		return "target rejected the fault"
	}
}

// degradedNote explains an unapplied degraded-mode injection.
func (in *Injector) degradedNote(supported, applied bool) string {
	switch {
	case applied:
		return ""
	case !supported:
		return "target does not support degraded faults"
	default:
		return "target rejected the fault"
	}
}

// resolve turns an event's backend field into a concrete target: the named
// backend, or a seeded-random pick over the sorted in-use set.
func (in *Injector) resolve(explicit string) (string, bool) {
	if explicit != "" {
		return explicit, true
	}
	ids := in.target.BackendIDs()
	if len(ids) == 0 {
		return "", false
	}
	sort.Strings(ids) // defensive: determinism must not rely on the target
	return ids[in.rng.Intn(len(ids))], true
}
