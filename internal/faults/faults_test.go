package faults

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"nexus/internal/simclock"
)

// fakeTarget records every injector call so tests can assert exact timing
// and ordering without standing up a cluster.
type fakeTarget struct {
	clock *simclock.Clock
	ids   []string
	dead  map[string]bool
	slow  map[string]float64
	net   time.Duration
	calls []string
}

func newFakeTarget(clock *simclock.Clock, ids ...string) *fakeTarget {
	return &fakeTarget{
		clock: clock,
		ids:   ids,
		dead:  make(map[string]bool),
		slow:  make(map[string]float64),
	}
}

func (t *fakeTarget) record(format string, args ...interface{}) {
	t.calls = append(t.calls, fmt.Sprintf("%v "+format, append([]interface{}{t.clock.Now()}, args...)...))
}

func (t *fakeTarget) BackendIDs() []string { return append([]string(nil), t.ids...) }

func (t *fakeTarget) CrashBackend(id string) bool {
	ok := false
	for _, known := range t.ids {
		if known == id {
			ok = true
		}
	}
	if !ok || t.dead[id] {
		t.record("crash %s refused", id)
		return false
	}
	t.dead[id] = true
	t.record("crash %s", id)
	return true
}

func (t *fakeTarget) RestartBackend(id string) bool {
	if !t.dead[id] {
		t.record("restart %s refused", id)
		return false
	}
	t.dead[id] = false
	t.record("restart %s", id)
	return true
}

func (t *fakeTarget) SlowBackend(id string, factor float64) bool {
	t.slow[id] = factor
	t.record("slow %s %.1f", id, factor)
	return true
}

func (t *fakeTarget) SetExtraNetDelay(d time.Duration) {
	t.net = d
	t.record("netdelay %v", d)
}

// fakeDegradedTarget extends fakeTarget with the DegradedTarget surface.
type fakeDegradedTarget struct {
	*fakeTarget
	schedDown bool
	cut       map[string]bool // "link/backend" -> severed
	rate      map[string]float64
}

func newFakeDegradedTarget(clock *simclock.Clock, ids ...string) *fakeDegradedTarget {
	return &fakeDegradedTarget{
		fakeTarget: newFakeTarget(clock, ids...),
		cut:        make(map[string]bool),
		rate:       make(map[string]float64),
	}
}

func (t *fakeDegradedTarget) SetSchedulerOutage(down bool) bool {
	if t.schedDown == down {
		t.record("schedoutage %v refused", down)
		return false
	}
	t.schedDown = down
	t.record("schedoutage %v", down)
	return true
}

func (t *fakeDegradedTarget) CutLink(link Link, backendID string, cut bool) bool {
	key := link.String() + "/" + backendID
	if t.cut[key] == cut {
		t.record("cutlink %s %v refused", key, cut)
		return false
	}
	t.cut[key] = cut
	t.record("cutlink %s %v", key, cut)
	return true
}

func (t *fakeDegradedTarget) SetRateMultiplier(session string, factor float64) bool {
	t.rate[session] = factor
	t.record("surge %q %.1f", session, factor)
	return true
}

func TestScriptValidate(t *testing.T) {
	cases := []struct {
		name   string
		script Script
		ok     bool
	}{
		{"empty", Script{}, true},
		{"crash", Script{{At: time.Second, Kind: Crash, Backend: "a"}}, true},
		{"transient crash", Script{{At: time.Second, Kind: Crash, Duration: time.Second}}, true},
		{"straggler", Script{{At: time.Second, Kind: Straggler, Factor: 4}}, true},
		{"netdelay", Script{{At: time.Second, Kind: NetDelay, Delay: time.Millisecond}}, true},
		{"negative time", Script{{At: -time.Second, Kind: Crash}}, false},
		{"negative duration", Script{{At: 0, Kind: Crash, Duration: -1}}, false},
		{"straggler factor 1", Script{{Kind: Straggler, Factor: 1}}, false},
		{"straggler factor 0", Script{{Kind: Straggler}}, false},
		{"netdelay no delay", Script{{Kind: NetDelay}}, false},
		{"scheduler outage", Script{{At: time.Second, Kind: SchedulerOutage, Duration: time.Second}}, true},
		{"partition control", Script{{At: time.Second, Kind: Partition, Link: ControlLink}}, true},
		{"partition data", Script{{At: time.Second, Kind: Partition, Backend: "a", Link: DataLink}}, true},
		{"partition bad link", Script{{Kind: Partition, Link: Link(7)}}, false},
		{"surge", Script{{At: time.Second, Kind: Surge, Session: "s", Factor: 3}}, true},
		{"surge no factor", Script{{Kind: Surge, Session: "s"}}, false},
		{"unknown kind", Script{{Kind: Kind(99)}}, false},
	}
	for _, c := range cases {
		err := c.script.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid script accepted", c.name)
		}
	}
}

func TestScheduleRejectsInvalidScript(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a")
	in := New(clock, tgt, 1)
	if err := in.Schedule(Script{{Kind: Straggler, Factor: 0.5}}); err == nil {
		t.Fatal("invalid script scheduled")
	}
	clock.Run()
	if len(tgt.calls) != 0 {
		t.Fatalf("calls fired from rejected script: %v", tgt.calls)
	}
}

func TestTransientCrashRestarts(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a", "b")
	in := New(clock, tgt, 1)
	err := in.Schedule(Script{
		{At: 2 * time.Second, Kind: Crash, Backend: "b", Duration: 3 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Run()
	want := []string{"2s crash b", "5s restart b"}
	if !reflect.DeepEqual(tgt.calls, want) {
		t.Fatalf("calls = %v, want %v", tgt.calls, want)
	}
	log := in.Log()
	if len(log) != 1 || log[0].At != 2*time.Second || log[0].Kind != Crash ||
		log[0].Backend != "b" || !log[0].Applied {
		t.Fatalf("log = %+v", log)
	}
}

func TestCrashUnknownBackendNotApplied(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a")
	in := New(clock, tgt, 1)
	err := in.Schedule(Script{
		{At: time.Second, Kind: Crash, Backend: "ghost", Duration: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Run()
	log := in.Log()
	if len(log) != 1 || log[0].Applied {
		t.Fatalf("log = %+v, want one unapplied injection", log)
	}
	// No restart must be scheduled for an unapplied crash.
	for _, c := range tgt.calls {
		if c == "2s restart ghost" {
			t.Fatal("restart scheduled for unapplied crash")
		}
	}
}

func TestStragglerWindowRestoresSpeed(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a")
	in := New(clock, tgt, 1)
	err := in.Schedule(Script{
		{At: time.Second, Kind: Straggler, Backend: "a", Factor: 4, Duration: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(2 * time.Second)
	if tgt.slow["a"] != 4 {
		t.Fatalf("slowdown during window = %v, want 4", tgt.slow["a"])
	}
	clock.Run()
	if tgt.slow["a"] != 1 {
		t.Fatalf("slowdown after window = %v, want 1", tgt.slow["a"])
	}
}

func TestOverlappingNetDelayWindows(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a")
	in := New(clock, tgt, 1)
	// Second spike starts inside the first and ends later: the first
	// window's expiry must not clear the still-active second spike.
	err := in.Schedule(Script{
		{At: 1 * time.Second, Kind: NetDelay, Delay: 5 * time.Millisecond, Duration: 4 * time.Second},
		{At: 2 * time.Second, Kind: NetDelay, Delay: 9 * time.Millisecond, Duration: 6 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(6 * time.Second) // past the first window's end (5s)
	if tgt.net != 9*time.Millisecond {
		t.Fatalf("net delay after first window expiry = %v, want 9ms", tgt.net)
	}
	clock.Run() // past the second window's end (8s)
	if tgt.net != 0 {
		t.Fatalf("net delay after all windows = %v, want 0", tgt.net)
	}
}

func TestRandomTargetSelectionIsSeeded(t *testing.T) {
	script := Script{
		{At: 1 * time.Second, Kind: Crash, Duration: time.Second},
		{At: 3 * time.Second, Kind: Crash, Duration: time.Second},
		{At: 5 * time.Second, Kind: Straggler, Factor: 2, Duration: time.Second},
	}
	run := func(seed int64) []Injection {
		clock := simclock.New()
		tgt := newFakeTarget(clock, "a", "b", "c", "d")
		in := New(clock, tgt, seed)
		if err := in.Schedule(script); err != nil {
			t.Fatal(err)
		}
		clock.Run()
		return in.Log()
	}
	first := run(7)
	if !reflect.DeepEqual(first, run(7)) {
		t.Fatal("same seed produced different injections")
	}
	distinct := false
	for seed := int64(0); seed < 16; seed++ {
		if !reflect.DeepEqual(first, run(seed)) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatal("16 seeds all picked identical targets; RNG not wired to selection")
	}
}

func TestRandomSelectionNoBackends(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock) // no backends
	in := New(clock, tgt, 1)
	if err := in.Schedule(Script{{At: time.Second, Kind: Crash}}); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	log := in.Log()
	if len(log) != 1 || log[0].Applied || log[0].Backend != "" {
		t.Fatalf("log = %+v, want one unapplied injection with no target", log)
	}
}

// Regression: a bounded spike's expiry used to clear a later permanent
// (Duration 0) spike, because netUntil only tracked bounded windows.
func TestBoundedThenPermanentNetDelay(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a")
	in := New(clock, tgt, 1)
	err := in.Schedule(Script{
		{At: 1 * time.Second, Kind: NetDelay, Delay: 5 * time.Millisecond, Duration: 3 * time.Second},
		{At: 2 * time.Second, Kind: NetDelay, Delay: 9 * time.Millisecond}, // permanent
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Run() // the bounded window's expiry at 4s fires here
	if tgt.net != 9*time.Millisecond {
		t.Fatalf("permanent spike cleared by bounded window expiry: net = %v, want 9ms", tgt.net)
	}
	in.ClearNetDelay()
	if tgt.net != 0 {
		t.Fatalf("net delay after explicit clear = %v, want 0", tgt.net)
	}
}

// A cleared pin must not suppress the expiry of later bounded windows.
func TestClearNetDelayUnpins(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a")
	in := New(clock, tgt, 1)
	if err := in.Schedule(Script{
		{At: 1 * time.Second, Kind: NetDelay, Delay: 9 * time.Millisecond}, // permanent
	}); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(2 * time.Second)
	in.ClearNetDelay()
	if err := in.Schedule(Script{
		{At: 3 * time.Second, Kind: NetDelay, Delay: 4 * time.Millisecond, Duration: time.Second},
	}); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	if tgt.net != 0 {
		t.Fatalf("bounded window after unpin did not expire: net = %v, want 0", tgt.net)
	}
}

// An empty script records one unapplied Noop injection so chaos logs
// reconcile with scripts instead of silently being empty.
func TestEmptyScriptLogsNoop(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a")
	in := New(clock, tgt, 1)
	if err := in.Schedule(nil); err != nil {
		t.Fatal(err)
	}
	log := in.Log()
	if len(log) != 1 || log[0].Kind != Noop || log[0].Applied || log[0].Note != "empty script" {
		t.Fatalf("log = %+v, want one unapplied noop injection", log)
	}
	clock.Run()
	if len(tgt.calls) != 0 {
		t.Fatalf("empty script fired calls: %v", tgt.calls)
	}
}

// Unresolvable events carry an explanatory note in the log.
func TestUnresolvableEventNote(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock) // no backends
	in := New(clock, tgt, 1)
	if err := in.Schedule(Script{{At: time.Second, Kind: Crash}}); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	log := in.Log()
	if len(log) != 1 || log[0].Applied || log[0].Note != "no live backends" {
		t.Fatalf("log = %+v, want unapplied injection with note", log)
	}
}

func TestSchedulerOutageWindow(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeDegradedTarget(clock, "a")
	in := New(clock, tgt, 1)
	err := in.Schedule(Script{
		{At: 2 * time.Second, Kind: SchedulerOutage, Duration: 3 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(3 * time.Second)
	if !tgt.schedDown {
		t.Fatal("scheduler not down during outage window")
	}
	clock.Run()
	if tgt.schedDown {
		t.Fatal("scheduler still down after outage window")
	}
	log := in.Log()
	if len(log) != 1 || !log[0].Applied || log[0].Kind != SchedulerOutage {
		t.Fatalf("log = %+v", log)
	}
}

func TestPartitionCutsAndHeals(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeDegradedTarget(clock, "a", "b")
	in := New(clock, tgt, 1)
	err := in.Schedule(Script{
		{At: 1 * time.Second, Kind: Partition, Backend: "b", Link: ControlLink, Duration: 2 * time.Second},
		{At: 1 * time.Second, Kind: Partition, Backend: "b", Link: DataLink}, // permanent
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(2 * time.Second)
	if !tgt.cut["control/b"] || !tgt.cut["data/b"] {
		t.Fatalf("links not cut: %v", tgt.cut)
	}
	clock.Run()
	if tgt.cut["control/b"] {
		t.Fatal("control link not healed after bounded partition")
	}
	if !tgt.cut["data/b"] {
		t.Fatal("permanent data partition healed itself")
	}
}

func TestSurgeWindowRestoresRate(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeDegradedTarget(clock, "a")
	in := New(clock, tgt, 1)
	err := in.Schedule(Script{
		{At: 1 * time.Second, Kind: Surge, Session: "lo", Factor: 3, Duration: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(2 * time.Second)
	if tgt.rate["lo"] != 3 {
		t.Fatalf("surge multiplier during window = %v, want 3", tgt.rate["lo"])
	}
	clock.Run()
	if tgt.rate["lo"] != 1 {
		t.Fatalf("surge multiplier after window = %v, want 1", tgt.rate["lo"])
	}
}

// Degraded-mode events against a target that lacks the DegradedTarget
// surface log unapplied injections with a note instead of panicking.
func TestDegradedEventsOnPlainTarget(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a")
	in := New(clock, tgt, 1)
	err := in.Schedule(Script{
		{At: 1 * time.Second, Kind: SchedulerOutage, Duration: time.Second},
		{At: 2 * time.Second, Kind: Partition, Backend: "a", Link: DataLink},
		{At: 3 * time.Second, Kind: Surge, Session: "s", Factor: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Run()
	log := in.Log()
	if len(log) != 3 {
		t.Fatalf("log has %d entries, want 3: %+v", len(log), log)
	}
	for _, inj := range log {
		if inj.Applied || inj.Note != "target does not support degraded faults" {
			t.Fatalf("injection = %+v, want unapplied with unsupported note", inj)
		}
	}
	if len(tgt.calls) != 0 {
		t.Fatalf("plain target received degraded calls: %v", tgt.calls)
	}
}

func TestLogReturnsCopy(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a")
	in := New(clock, tgt, 1)
	if err := in.Schedule(Script{{At: time.Second, Kind: Crash, Backend: "a"}}); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	log := in.Log()
	log[0].Backend = "mutated"
	if in.Log()[0].Backend != "a" {
		t.Fatal("Log exposed internal slice")
	}
}
