package faults

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"nexus/internal/simclock"
)

// fakeTarget records every injector call so tests can assert exact timing
// and ordering without standing up a cluster.
type fakeTarget struct {
	clock *simclock.Clock
	ids   []string
	dead  map[string]bool
	slow  map[string]float64
	net   time.Duration
	calls []string
}

func newFakeTarget(clock *simclock.Clock, ids ...string) *fakeTarget {
	return &fakeTarget{
		clock: clock,
		ids:   ids,
		dead:  make(map[string]bool),
		slow:  make(map[string]float64),
	}
}

func (t *fakeTarget) record(format string, args ...interface{}) {
	t.calls = append(t.calls, fmt.Sprintf("%v "+format, append([]interface{}{t.clock.Now()}, args...)...))
}

func (t *fakeTarget) BackendIDs() []string { return append([]string(nil), t.ids...) }

func (t *fakeTarget) CrashBackend(id string) bool {
	ok := false
	for _, known := range t.ids {
		if known == id {
			ok = true
		}
	}
	if !ok || t.dead[id] {
		t.record("crash %s refused", id)
		return false
	}
	t.dead[id] = true
	t.record("crash %s", id)
	return true
}

func (t *fakeTarget) RestartBackend(id string) bool {
	if !t.dead[id] {
		t.record("restart %s refused", id)
		return false
	}
	t.dead[id] = false
	t.record("restart %s", id)
	return true
}

func (t *fakeTarget) SlowBackend(id string, factor float64) bool {
	t.slow[id] = factor
	t.record("slow %s %.1f", id, factor)
	return true
}

func (t *fakeTarget) SetExtraNetDelay(d time.Duration) {
	t.net = d
	t.record("netdelay %v", d)
}

func TestScriptValidate(t *testing.T) {
	cases := []struct {
		name   string
		script Script
		ok     bool
	}{
		{"empty", Script{}, true},
		{"crash", Script{{At: time.Second, Kind: Crash, Backend: "a"}}, true},
		{"transient crash", Script{{At: time.Second, Kind: Crash, Duration: time.Second}}, true},
		{"straggler", Script{{At: time.Second, Kind: Straggler, Factor: 4}}, true},
		{"netdelay", Script{{At: time.Second, Kind: NetDelay, Delay: time.Millisecond}}, true},
		{"negative time", Script{{At: -time.Second, Kind: Crash}}, false},
		{"negative duration", Script{{At: 0, Kind: Crash, Duration: -1}}, false},
		{"straggler factor 1", Script{{Kind: Straggler, Factor: 1}}, false},
		{"straggler factor 0", Script{{Kind: Straggler}}, false},
		{"netdelay no delay", Script{{Kind: NetDelay}}, false},
		{"unknown kind", Script{{Kind: Kind(99)}}, false},
	}
	for _, c := range cases {
		err := c.script.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid script accepted", c.name)
		}
	}
}

func TestScheduleRejectsInvalidScript(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a")
	in := New(clock, tgt, 1)
	if err := in.Schedule(Script{{Kind: Straggler, Factor: 0.5}}); err == nil {
		t.Fatal("invalid script scheduled")
	}
	clock.Run()
	if len(tgt.calls) != 0 {
		t.Fatalf("calls fired from rejected script: %v", tgt.calls)
	}
}

func TestTransientCrashRestarts(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a", "b")
	in := New(clock, tgt, 1)
	err := in.Schedule(Script{
		{At: 2 * time.Second, Kind: Crash, Backend: "b", Duration: 3 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Run()
	want := []string{"2s crash b", "5s restart b"}
	if !reflect.DeepEqual(tgt.calls, want) {
		t.Fatalf("calls = %v, want %v", tgt.calls, want)
	}
	log := in.Log()
	if len(log) != 1 || log[0].At != 2*time.Second || log[0].Kind != Crash ||
		log[0].Backend != "b" || !log[0].Applied {
		t.Fatalf("log = %+v", log)
	}
}

func TestCrashUnknownBackendNotApplied(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a")
	in := New(clock, tgt, 1)
	err := in.Schedule(Script{
		{At: time.Second, Kind: Crash, Backend: "ghost", Duration: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Run()
	log := in.Log()
	if len(log) != 1 || log[0].Applied {
		t.Fatalf("log = %+v, want one unapplied injection", log)
	}
	// No restart must be scheduled for an unapplied crash.
	for _, c := range tgt.calls {
		if c == "2s restart ghost" {
			t.Fatal("restart scheduled for unapplied crash")
		}
	}
}

func TestStragglerWindowRestoresSpeed(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a")
	in := New(clock, tgt, 1)
	err := in.Schedule(Script{
		{At: time.Second, Kind: Straggler, Backend: "a", Factor: 4, Duration: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(2 * time.Second)
	if tgt.slow["a"] != 4 {
		t.Fatalf("slowdown during window = %v, want 4", tgt.slow["a"])
	}
	clock.Run()
	if tgt.slow["a"] != 1 {
		t.Fatalf("slowdown after window = %v, want 1", tgt.slow["a"])
	}
}

func TestOverlappingNetDelayWindows(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a")
	in := New(clock, tgt, 1)
	// Second spike starts inside the first and ends later: the first
	// window's expiry must not clear the still-active second spike.
	err := in.Schedule(Script{
		{At: 1 * time.Second, Kind: NetDelay, Delay: 5 * time.Millisecond, Duration: 4 * time.Second},
		{At: 2 * time.Second, Kind: NetDelay, Delay: 9 * time.Millisecond, Duration: 6 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(6 * time.Second) // past the first window's end (5s)
	if tgt.net != 9*time.Millisecond {
		t.Fatalf("net delay after first window expiry = %v, want 9ms", tgt.net)
	}
	clock.Run() // past the second window's end (8s)
	if tgt.net != 0 {
		t.Fatalf("net delay after all windows = %v, want 0", tgt.net)
	}
}

func TestRandomTargetSelectionIsSeeded(t *testing.T) {
	script := Script{
		{At: 1 * time.Second, Kind: Crash, Duration: time.Second},
		{At: 3 * time.Second, Kind: Crash, Duration: time.Second},
		{At: 5 * time.Second, Kind: Straggler, Factor: 2, Duration: time.Second},
	}
	run := func(seed int64) []Injection {
		clock := simclock.New()
		tgt := newFakeTarget(clock, "a", "b", "c", "d")
		in := New(clock, tgt, seed)
		if err := in.Schedule(script); err != nil {
			t.Fatal(err)
		}
		clock.Run()
		return in.Log()
	}
	first := run(7)
	if !reflect.DeepEqual(first, run(7)) {
		t.Fatal("same seed produced different injections")
	}
	distinct := false
	for seed := int64(0); seed < 16; seed++ {
		if !reflect.DeepEqual(first, run(seed)) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatal("16 seeds all picked identical targets; RNG not wired to selection")
	}
}

func TestRandomSelectionNoBackends(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock) // no backends
	in := New(clock, tgt, 1)
	if err := in.Schedule(Script{{At: time.Second, Kind: Crash}}); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	log := in.Log()
	if len(log) != 1 || log[0].Applied || log[0].Backend != "" {
		t.Fatalf("log = %+v, want one unapplied injection with no target", log)
	}
}

func TestLogReturnsCopy(t *testing.T) {
	clock := simclock.New()
	tgt := newFakeTarget(clock, "a")
	in := New(clock, tgt, 1)
	if err := in.Schedule(Script{{At: time.Second, Kind: Crash, Backend: "a"}}); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	log := in.Log()
	log[0].Backend = "mutated"
	if in.Log()[0].Backend != "a" {
		t.Fatal("Log exposed internal slice")
	}
}
