// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to end
// on the simulated cluster and logs the resulting table; run with
//
//	go test -bench=. -benchmem
//
// Benchmarks use the experiments' "short" mode (reduced simulation horizons
// and coarser goodput searches); use `go run ./cmd/nexus-bench -run all`
// for full-precision tables.
package nexus_test

import (
	"testing"

	"nexus/internal/experiments"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e, err := experiments.Get(id)
		if err != nil {
			b.Fatal(err)
		}
		table, err := e.Run(experiments.NewRunContext(true))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.String())
		}
	}
}

// BenchmarkTable1_CostModel regenerates Table 1: per-model execution
// latency on CPU and GPU, and dollar cost per 1000 invocations.
func BenchmarkTable1_CostModel(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2_SquishyExample regenerates the Table 2 / Figure 2 worked
// example of squishy bin packing.
func BenchmarkTable2_SquishyExample(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFigure4_LatencySplit regenerates Figures 3-4: pipeline
// throughput of three latency split plans across fan-out gammas.
func BenchmarkFigure4_LatencySplit(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure5_LazyDropBadRate regenerates Figure 5: lazy dropping's
// bad rate under uniform and Poisson arrivals across alpha.
func BenchmarkFigure5_LazyDropBadRate(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFigure9_EarlyDrop regenerates Figure 9: max goodput of lazy vs
// early drop.
func BenchmarkFigure9_EarlyDrop(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFigure10_GameAblation regenerates Figure 10: game analysis
// across serving systems plus the cumulative feature ablation.
func BenchmarkFigure10_GameAblation(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFigure11_TrafficAblation regenerates Figure 11: traffic
// analysis across serving systems plus the cumulative ablation.
func BenchmarkFigure11_TrafficAblation(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFigure12_RushHour regenerates Figure 12: rush vs non-rush hour
// throughput for four systems.
func BenchmarkFigure12_RushHour(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFigure13_LargeScale regenerates Figure 13: the long-running
// multi-application deployment window (load, GPU usage, bad rate).
func BenchmarkFigure13_LargeScale(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkSection74_Utilization regenerates §7.4's GPU-efficiency
// comparison against the theoretical lower bound.
func BenchmarkSection74_Utilization(b *testing.B) { runExperiment(b, "sec7.4") }

// BenchmarkFigure14_Multiplexing regenerates Figure 14: single-GPU
// multiplexing across model counts and SLOs for four systems.
func BenchmarkFigure14_Multiplexing(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFigure15_PrefixBatching regenerates Figure 15: prefix batching
// throughput and memory scaling with variant count.
func BenchmarkFigure15_PrefixBatching(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFigure16_SquishyScheduling regenerates Figure 16: squishy vs
// batch-oblivious scheduling across workload mixes.
func BenchmarkFigure16_SquishyScheduling(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFigure17_QueryAnalysis regenerates Figure 17: query analysis vs
// even latency splitting across SLOs and gammas.
func BenchmarkFigure17_QueryAnalysis(b *testing.B) { runExperiment(b, "fig17") }

// --- Ablation benches for the design decisions DESIGN.md §5-6 call out ---

// BenchmarkAblationSLOFactor sweeps the §4.1 worst-case factor.
func BenchmarkAblationSLOFactor(b *testing.B) { runExperiment(b, "abl-slofactor") }

// BenchmarkAblationEpsilon sweeps the latency-split DP discretization.
func BenchmarkAblationEpsilon(b *testing.B) { runExperiment(b, "abl-epsilon") }

// BenchmarkAblationSlack sweeps the control plane's planning slack.
func BenchmarkAblationSlack(b *testing.B) { runExperiment(b, "abl-slack") }

// BenchmarkAblationWindow sweeps the early-drop window size.
func BenchmarkAblationWindow(b *testing.B) { runExperiment(b, "abl-window") }

// BenchmarkAblationDefer contrasts drop vs defer-at-low-priority (§5).
func BenchmarkAblationDefer(b *testing.B) { runExperiment(b, "abl-defer") }

// BenchmarkExtensionHetero packs a mixed workload onto a heterogeneous
// K80/1080Ti/V100 fleet and compares dollar cost with homogeneous options.
func BenchmarkExtensionHetero(b *testing.B) { runExperiment(b, "ext-hetero") }

// BenchmarkCtrlShard compares the monolithic epoch planner against the
// sharded, incremental control plane on the Figure 13 deployment window.
func BenchmarkCtrlShard(b *testing.B) { runExperiment(b, "ctrl-shard") }
