// Package nexus is a Go reproduction of "Nexus: A GPU Cluster Engine for
// Accelerating DNN-Based Video Analysis" (SOSP 2019).
//
// Nexus serves DNN inference from a cluster of GPUs at high utilization
// under latency SLOs. Its key ideas, all implemented here, are:
//
//   - Squishy bin packing (§6.1): batching-aware allocation of model
//     sessions to GPUs, where the "size" of a workload shrinks as its
//     batch grows.
//   - Complex query scheduling (§6.2): dataflow queries carry a single
//     whole-query SLO, split optimally across stages by dynamic
//     programming.
//   - Prefix batching (§6.3): transfer-learned model variants that share
//     all but their last layers execute the shared prefix as one batch.
//   - Batch-aware dispatch (§4.3): early-drop admission control keeps
//     batches efficient under bursty arrivals.
//
// Because real GPUs are not required (or available) for the scheduling
// research this package supports, execution happens on a deterministic
// discrete-event GPU simulator calibrated to the latencies the paper
// reports; see DESIGN.md for the substitution argument.
//
// The quickest start:
//
//	d, _ := nexus.NewDeployment(nexus.Config{
//	    System: nexus.SystemNexus, Features: nexus.AllFeatures(), GPUs: 4,
//	})
//	_ = d.AddSession(nexus.SessionSpec{
//	    ID: "demo", ModelID: nexus.ResNet50,
//	    SLO: 100 * time.Millisecond, ExpectedRate: 500,
//	}, nil)
//	badRate, _ := d.Run(30 * time.Second)
package nexus

import (
	"time"

	"nexus/internal/apps"
	"nexus/internal/cluster"
	"nexus/internal/globalsched"
	"nexus/internal/metrics"
	"nexus/internal/model"
	"nexus/internal/profiler"
	"nexus/internal/queryopt"
	"nexus/internal/scheduler"
)

// Deployment is a full simulated Nexus cluster: elastic GPU pool,
// frontend, global scheduler, and workload drivers.
type Deployment = cluster.Deployment

// Config configures a deployment.
type Config = cluster.Config

// System selects which serving system a deployment runs.
type System = cluster.System

// The serving systems compared in the paper's evaluation (§7.2).
const (
	SystemNexus         = cluster.Nexus
	SystemNexusParallel = cluster.NexusParallel
	SystemClipper       = cluster.Clipper
	SystemTFServing     = cluster.TFServing
)

// Features are the Nexus ablation switches (§7.3): prefix batching,
// squishy scheduling, early drop, CPU/GPU overlap, query analysis.
type Features = cluster.Features

// AllFeatures enables full Nexus.
func AllFeatures() Features { return cluster.AllFeatures() }

// NewDeployment creates a deployment.
func NewDeployment(cfg Config) (*Deployment, error) { return cluster.New(cfg) }

// SessionSpec declares a standalone model session: a model served under a
// latency SLO.
type SessionSpec = globalsched.SessionSpec

// QuerySpec declares a complex query with an expected root rate.
type QuerySpec = globalsched.QuerySpec

// Query is a dataflow query over multiple models with one whole-query SLO.
type Query = queryopt.Query

// QueryNode is one model stage in a query.
type QueryNode = queryopt.Node

// QueryEdge connects a stage to a child with a fan-out factor gamma.
type QueryEdge = queryopt.Edge

// Session is a scheduling-level session (model, SLO, rate).
type Session = scheduler.Session

// Plan is a cluster schedule produced by the packing algorithms.
type Plan = scheduler.Plan

// SchedConfig tunes the packing algorithms.
type SchedConfig = scheduler.Config

// Profile is a batching profile: ℓ(b) = αb + β plus CPU and memory costs.
type Profile = profiler.Profile

// GPUType names a simulated device model.
type GPUType = profiler.GPUType

// Supported GPU types.
const (
	GTX1080Ti = profiler.GTX1080Ti
	K80       = profiler.K80
	V100      = profiler.V100
)

// Catalog model IDs (Table 1 and §7 workloads).
const (
	LeNet5       = model.LeNet5
	VGG7         = model.VGG7
	ResNet50     = model.ResNet50
	Inception4   = model.Inception4
	InceptionV3  = model.InceptionV3
	Darknet53    = model.Darknet53
	SSD          = model.SSD
	VGGFace      = model.VGGFace
	GoogLeNetCar = model.GoogLeNetCar
)

// Catalog returns the built-in model database.
func Catalog() *model.DB { return model.Catalog() }

// Pack runs squishy bin packing (Algorithm 1) over sessions and returns
// the cluster plan.
func Pack(sessions []Session, profiles map[string]*Profile, cfg SchedConfig) (*Plan, error) {
	return scheduler.Pack(sessions, profiles, cfg)
}

// ValidatePlan checks a plan against sessions: duty-cycle feasibility,
// worst-case SLO satisfaction, throughput coverage and memory limits.
func ValidatePlan(plan *Plan, sessions []Session, profiles map[string]*Profile, cfg SchedConfig) error {
	return scheduler.Validate(plan, sessions, profiles, cfg)
}

// OptimizeQuery computes the GPU-minimizing latency split for a query at
// the given root rate (§6.2).
func OptimizeQuery(q *Query, rootRate float64, profiles map[string]*Profile, eps time.Duration) (map[string]time.Duration, float64, error) {
	split, err := queryopt.Optimize(q, rootRate, profiles, eps, scheduler.Config{})
	if err != nil {
		return nil, 0, err
	}
	return split.Budgets, split.GPUs, nil
}

// CombinedProfile builds the batching profile of a prefix group: k
// variants sharing all compute except a suffix holding suffixFLOPFrac of
// the FLOPs (§6.3 "Prefix Batching").
func CombinedProfile(base *Profile, suffixFLOPFrac float64, k int) (*Profile, error) {
	return profiler.CombinedProfile(base, suffixFLOPFrac, k)
}

// SeparateVariantsProfile models serving k variants WITHOUT prefix
// batching on one GPU: k full sub-batches and k full model replicas (the
// Figure 15 baseline).
func SeparateVariantsProfile(base *Profile, k int) (*Profile, error) {
	return profiler.SeparateVariantsProfile(base, k)
}

// CatalogProfiles derives batching profiles for every calibrated model in
// the DB (including "-vN" specialized variants), keyed by model ID, for
// one GPU type.
func CatalogProfiles(mdb *model.DB, gpu GPUType) (map[string]*Profile, error) {
	pdb, err := profiler.CatalogProfiles(mdb)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Profile)
	for _, id := range mdb.IDs() {
		if p, err := pdb.Get(id, gpu); err == nil {
			out[id] = p
		}
	}
	return out, nil
}

// MaxGoodput finds the maximum request rate at which the deployment built
// by build keeps at least 99% of requests within their SLOs (the paper's
// throughput metric, §7). Each probe runs `dur` of virtual time.
func MaxGoodput(lo, hi float64, dur time.Duration, build func(rate float64) (*Deployment, error)) float64 {
	eval := func(rate float64) float64 {
		d, err := build(rate)
		if err != nil {
			return 1
		}
		bad, err := d.Run(dur)
		if err != nil {
			return 1 // e.g. pool exhausted: rate not servable
		}
		return bad
	}
	return metrics.MaxGoodput(lo, hi, metrics.GoodputTarget, 0.02, eval)
}

// AppBuilder constructs one of the paper's applications (Table 4) against
// a deployment's model database.
type AppBuilder = apps.Builder

// The seven evaluated applications.
var (
	AppGame      = apps.Game
	AppTraffic   = apps.Traffic
	AppDance     = apps.Dance
	AppBillboard = apps.Billboard
	AppBike      = apps.Bike
	AppAmber     = apps.Amber
	AppLogo      = apps.Logo
	AllApps      = apps.All
)

// DeployApp installs an application onto a deployment.
func DeployApp(d *Deployment, build AppBuilder) error {
	_, err := apps.Deploy(d, build)
	return err
}
