package main

import (
	"strings"
	"testing"
	"time"

	"nexus/internal/telemetry"
	"nexus/internal/trace"
)

// snap builds a snapshot with the counters/gauges the dashboard reads.
func snap(at time.Duration, good float64) telemetry.Snapshot {
	return telemetry.Snapshot{
		At:   at,
		AtMS: float64(at) / float64(time.Millisecond),
		Counters: map[string]float64{
			"sched_epochs_total":                                2,
			"sched_sessions_moved_total":                        1,
			telemetry.Key("session_sent_total", "session", "s"): good + 10,
			telemetry.Key("session_good_total", "session", "s"): good,
			telemetry.Key("session_bad_total", "session", "s"):  10,
		},
		Gauges: map[string]float64{
			"sched_gpus_allocated":                                 3,
			"sched_gpus_demanded":                                  4,
			"cluster_gpus_capacity":                                8,
			telemetry.Key("backend_up", "backend", "be0"):          1,
			telemetry.Key("backend_duty", "backend", "be0"):        0.5,
			telemetry.Key("backend_queue_depth", "backend", "be0"): 7,
			telemetry.Key("backend_batch_size", "backend", "be0"):  4,
		},
		Windows: map[string]telemetry.WindowStats{
			telemetry.Key("backend_exec_ms", "backend", "be0"): {Count: 12, MeanMS: 20, P50MS: 19, P99MS: 30, MaxMS: 31},
		},
	}
}

func TestRenderFrame(t *testing.T) {
	snaps := []telemetry.Snapshot{snap(time.Second, 100), snap(2*time.Second, 220)}
	alerts := []telemetry.Alert{
		{At: 1500 * time.Millisecond, AtMS: 1500, Rule: "slo-burn-rate", Target: "s", State: "firing", Value: 9.9},
	}
	out := renderFrame(snaps, alerts, nil)

	for _, want := range []string{
		"t=2.0s",
		"gpus=3/8 (demand 4)",
		"SESSION",
		"s ", // session row
		"BACKEND",
		"be0",
		"up",
		"50.0",    // duty%
		"30.00ms", // exec p99
		"FIRING: slo-burn-rate(s)",
		"firing",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// Goodput over the 1s between snapshots: (220-100)/1 = 120.
	if !strings.Contains(out, "120.0") {
		t.Errorf("want goodput 120.0 in frame:\n%s", out)
	}
	// Attainment 220/(220+10) = 95.65%.
	if !strings.Contains(out, "95.65") {
		t.Errorf("want attainment 95.65 in frame:\n%s", out)
	}
}

func TestRenderFrameAlertsResolveAndClip(t *testing.T) {
	snaps := []telemetry.Snapshot{snap(3*time.Second, 100)}
	alerts := []telemetry.Alert{
		{At: 1 * time.Second, AtMS: 1000, Rule: "queue-saturation", Target: "be0", State: "firing"},
		{At: 2 * time.Second, AtMS: 2000, Rule: "queue-saturation", Target: "be0", State: "resolved"},
		// After the displayed snapshot time — must not appear.
		{At: 5 * time.Second, AtMS: 5000, Rule: "backend-flap", Target: "be1", State: "firing"},
	}
	out := renderFrame(snaps, alerts, nil)
	if strings.Contains(out, "FIRING:") {
		t.Errorf("resolved alert must clear the firing panel:\n%s", out)
	}
	if strings.Contains(out, "be1") {
		t.Errorf("future alert leaked into the frame:\n%s", out)
	}
	if !strings.Contains(out, "resolved") {
		t.Errorf("want the resolve transition in the recent-alerts list:\n%s", out)
	}
}

func TestRenderFrameSingleSnapshot(t *testing.T) {
	out := renderFrame([]telemetry.Snapshot{snap(time.Second, 50)}, nil, nil)
	// No previous snapshot: goodput column renders 0.0 without panicking.
	if !strings.Contains(out, "0.0") {
		t.Errorf("single-snapshot frame should render zero goodput:\n%s", out)
	}
}

// TestRenderFramePlanDiffPanel pins the plan-change panel: diffs up to the
// displayed time appear (clipped to the last three epochs), future diffs
// do not.
func TestRenderFramePlanDiffPanel(t *testing.T) {
	diffs := []trace.PlanDiffRecord{
		{Epoch: 1, AtMS: 500, Cause: "initial", Changes: []trace.PlanChange{
			{Kind: "unit-added", Session: "s", Unit: "u", Node: "plan-0"},
		}},
		{Epoch: 2, AtMS: 1500, Cause: "periodic", Changes: []trace.PlanChange{
			{Kind: "session-moved", Session: "s", Unit: "u", From: "plan-0", To: "plan-1"},
		}},
		// After the displayed snapshot time — must not appear.
		{Epoch: 3, AtMS: 9000, Cause: "recovery", Changes: []trace.PlanChange{
			{Kind: "replica-removed", Node: "plan-1", From: "be9"},
		}},
	}
	out := renderFrame([]telemetry.Snapshot{snap(2*time.Second, 100)}, nil, diffs)
	for _, want := range []string{"plan changes", "session-moved", "plan-0->plan-1", "unit-added"} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "replica-removed") {
		t.Errorf("future plan diff leaked into the frame:\n%s", out)
	}
}

// TestRenderFrameExemplar pins the EXEC p99 exemplar cell: a window
// carrying an exemplar request ID names it; one without renders a dash.
func TestRenderFrameExemplar(t *testing.T) {
	s := snap(time.Second, 50)
	out := renderFrame([]telemetry.Snapshot{s}, nil, nil)
	if !strings.Contains(out, "EXEMPLAR") {
		t.Fatalf("frame missing exemplar column:\n%s", out)
	}
	if strings.Contains(out, "req ") {
		t.Errorf("exemplar shown without an ID:\n%s", out)
	}
	w := s.Windows[telemetry.Key("backend_exec_ms", "backend", "be0")]
	w.ExemplarID = 4242
	s.Windows[telemetry.Key("backend_exec_ms", "backend", "be0")] = w
	out = renderFrame([]telemetry.Snapshot{s}, nil, nil)
	if !strings.Contains(out, "req 4242") {
		t.Errorf("frame missing exemplar req 4242:\n%s", out)
	}
}
