package main

import (
	"strings"
	"testing"
	"time"

	"nexus/internal/telemetry"
)

// snap builds a snapshot with the counters/gauges the dashboard reads.
func snap(at time.Duration, good float64) telemetry.Snapshot {
	return telemetry.Snapshot{
		At:   at,
		AtMS: float64(at) / float64(time.Millisecond),
		Counters: map[string]float64{
			"sched_epochs_total":                                2,
			"sched_sessions_moved_total":                        1,
			telemetry.Key("session_sent_total", "session", "s"): good + 10,
			telemetry.Key("session_good_total", "session", "s"): good,
			telemetry.Key("session_bad_total", "session", "s"):  10,
		},
		Gauges: map[string]float64{
			"sched_gpus_allocated":                                 3,
			"sched_gpus_demanded":                                  4,
			"cluster_gpus_capacity":                                8,
			telemetry.Key("backend_up", "backend", "be0"):          1,
			telemetry.Key("backend_duty", "backend", "be0"):        0.5,
			telemetry.Key("backend_queue_depth", "backend", "be0"): 7,
			telemetry.Key("backend_batch_size", "backend", "be0"):  4,
		},
		Windows: map[string]telemetry.WindowStats{
			telemetry.Key("backend_exec_ms", "backend", "be0"): {Count: 12, MeanMS: 20, P50MS: 19, P99MS: 30, MaxMS: 31},
		},
	}
}

func TestRenderFrame(t *testing.T) {
	snaps := []telemetry.Snapshot{snap(time.Second, 100), snap(2*time.Second, 220)}
	alerts := []telemetry.Alert{
		{At: 1500 * time.Millisecond, AtMS: 1500, Rule: "slo-burn-rate", Target: "s", State: "firing", Value: 9.9},
	}
	out := renderFrame(snaps, alerts)

	for _, want := range []string{
		"t=2.0s",
		"gpus=3/8 (demand 4)",
		"SESSION",
		"s ", // session row
		"BACKEND",
		"be0",
		"up",
		"50.0",    // duty%
		"30.00ms", // exec p99
		"FIRING: slo-burn-rate(s)",
		"firing",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// Goodput over the 1s between snapshots: (220-100)/1 = 120.
	if !strings.Contains(out, "120.0") {
		t.Errorf("want goodput 120.0 in frame:\n%s", out)
	}
	// Attainment 220/(220+10) = 95.65%.
	if !strings.Contains(out, "95.65") {
		t.Errorf("want attainment 95.65 in frame:\n%s", out)
	}
}

func TestRenderFrameAlertsResolveAndClip(t *testing.T) {
	snaps := []telemetry.Snapshot{snap(3*time.Second, 100)}
	alerts := []telemetry.Alert{
		{At: 1 * time.Second, AtMS: 1000, Rule: "queue-saturation", Target: "be0", State: "firing"},
		{At: 2 * time.Second, AtMS: 2000, Rule: "queue-saturation", Target: "be0", State: "resolved"},
		// After the displayed snapshot time — must not appear.
		{At: 5 * time.Second, AtMS: 5000, Rule: "backend-flap", Target: "be1", State: "firing"},
	}
	out := renderFrame(snaps, alerts)
	if strings.Contains(out, "FIRING:") {
		t.Errorf("resolved alert must clear the firing panel:\n%s", out)
	}
	if strings.Contains(out, "be1") {
		t.Errorf("future alert leaked into the frame:\n%s", out)
	}
	if !strings.Contains(out, "resolved") {
		t.Errorf("want the resolve transition in the recent-alerts list:\n%s", out)
	}
}

func TestRenderFrameSingleSnapshot(t *testing.T) {
	out := renderFrame([]telemetry.Snapshot{snap(time.Second, 50)}, nil)
	// No previous snapshot: goodput column renders 0.0 without panicking.
	if !strings.Contains(out, "0.0") {
		t.Errorf("single-snapshot frame should render zero goodput:\n%s", out)
	}
}
