// nexus-top is a terminal dashboard over a live-telemetry snapshot stream
// (nexus-sim -telemetry-out). It renders per-session goodput and SLO
// attainment, per-GPU utilization/queue/batch state, scheduler counters,
// the firing alerts, and — when given the audit log — the scheduler's
// recent plan changes, from a finished recording or live by tailing a
// file another process is still appending to.
//
//	nexus-sim -app game -rate 300 -telemetry-out /tmp/telem.jsonl -alerts-out /tmp/alerts.jsonl
//	nexus-top -in /tmp/telem.jsonl -alerts /tmp/alerts.jsonl
//	nexus-top -in /tmp/telem.jsonl -audit /tmp/audit.json  # plan-change panel
//	nexus-top -in /tmp/telem.jsonl -follow        # live tail
//	nexus-top -in - < /tmp/telem.jsonl            # stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"nexus/internal/telemetry"
	"nexus/internal/trace"
)

func main() {
	in := flag.String("in", "", "telemetry snapshot JSONL ('-' = stdin)")
	alertsPath := flag.String("alerts", "", "telemetry alert-log JSONL (optional)")
	auditPath := flag.String("audit", "", "control-plane audit log JSON (optional; adds the plan-change panel)")
	follow := flag.Bool("follow", false, "keep tailing -in as it grows, re-rendering each snapshot")
	refresh := flag.Duration("refresh", 500*time.Millisecond, "poll period while following")
	plain := flag.Bool("plain", false, "no terminal control codes; print one final frame")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "nexus-top: need -in (see nexus-sim -telemetry-out)")
		flag.Usage()
		os.Exit(2)
	}

	var alerts []telemetry.Alert
	if *alertsPath != "" {
		f, err := os.Open(*alertsPath)
		if err != nil {
			log.Fatal(err)
		}
		alerts, err = telemetry.ReadAlertsJSONL(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}

	var planDiffs []trace.PlanDiffRecord
	if *auditPath != "" {
		f, err := os.Open(*auditPath)
		if err != nil {
			log.Fatal(err)
		}
		audit, err := trace.ReadAudit(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		planDiffs = audit.PlanDiffs()
	}

	if *in == "-" {
		snaps, err := telemetry.ReadSnapshotsJSONL(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		finish(snaps, alerts, planDiffs, *plain)
		return
	}

	if !*follow {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		snaps, err := telemetry.ReadSnapshotsJSONL(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		finish(snaps, alerts, planDiffs, *plain)
		return
	}

	if err := tail(*in, alerts, planDiffs, *refresh, *plain); err != nil {
		log.Fatal(err)
	}
}

// finish renders the recording's final state once.
func finish(snaps []telemetry.Snapshot, alerts []telemetry.Alert, planDiffs []trace.PlanDiffRecord, plain bool) {
	if len(snaps) == 0 {
		log.Fatal("nexus-top: no snapshots in input (empty or truncated stream?)")
	}
	if !plain {
		fmt.Print("\x1b[H\x1b[2J")
	}
	os.Stdout.WriteString(renderFrame(snaps, alerts, planDiffs))
}

// tail follows a growing snapshot file, rendering a frame per new
// snapshot. Torn trailing lines (a writer mid-append) stay buffered in the
// feed parser and are retried on the next poll instead of killing the
// watch. Runs until interrupted (^C).
func tail(path string, alerts []telemetry.Alert, planDiffs []trace.PlanDiffRecord, refresh time.Duration, plain bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var feed feedParser
	var snaps []telemetry.Snapshot
	for {
		chunk, err := io.ReadAll(f)
		if err != nil {
			return err
		}
		fresh, err := feed.advance(chunk)
		if err != nil {
			return fmt.Errorf("nexus-top: %s: %w", path, err)
		}
		if len(fresh) > 0 {
			snaps = append(snaps, fresh...)
			if !plain {
				fmt.Print("\x1b[H\x1b[2J")
			}
			os.Stdout.WriteString(renderFrame(snaps, alerts, planDiffs))
		}
		time.Sleep(refresh)
	}
}

// renderFrame builds one dashboard frame from the snapshot history (the
// last snapshot is the displayed state; the previous one provides rate
// deltas), the alert log, and the plan-diff history.
func renderFrame(snaps []telemetry.Snapshot, alerts []telemetry.Alert, planDiffs []trace.PlanDiffRecord) string {
	cur := &snaps[len(snaps)-1]
	var prev *telemetry.Snapshot
	if len(snaps) > 1 {
		prev = &snaps[len(snaps)-2]
	}
	var b strings.Builder

	epochs, _ := cur.Counter("sched_epochs_total")
	moved, _ := cur.Counter("sched_sessions_moved_total")
	alloc, _ := cur.Gauge("sched_gpus_allocated")
	demanded, _ := cur.Gauge("sched_gpus_demanded")
	capacity, _ := cur.Gauge("cluster_gpus_capacity")
	fmt.Fprintf(&b, "nexus-top  t=%.1fs  epochs=%.0f  moves=%.0f  gpus=%.0f/%.0f (demand %.0f)\n\n",
		cur.AtMS/1000, epochs, moved, alloc, capacity, demanded)

	// Per-session panel.
	fmt.Fprintf(&b, "%-24s %9s %9s %8s %8s %10s\n", "SESSION", "SENT", "GOOD", "BAD", "ATTAIN%", "GOODPUT/S")
	for _, key := range cur.Keys("session_sent_total") {
		sid := telemetry.LabelValue(key, "session")
		sent, _ := cur.Counter(key)
		good, _ := cur.Counter(telemetry.Key("session_good_total", "session", sid))
		bad, _ := cur.Counter(telemetry.Key("session_bad_total", "session", sid))
		attain := 100.0
		if good+bad > 0 {
			attain = 100 * good / (good + bad)
		}
		goodput := 0.0
		if prev != nil && cur.At > prev.At {
			pg, _ := prev.Counter(telemetry.Key("session_good_total", "session", sid))
			goodput = (good - pg) / (cur.At - prev.At).Seconds()
		}
		fmt.Fprintf(&b, "%-24s %9.0f %9.0f %8.0f %8.2f %10.1f\n", sid, sent, good, bad, attain, goodput)
	}

	// Per-GPU panel. Under forensics the exec window carries an exemplar
	// request ID — the lead request of the window's worst batch — so a hot
	// p99 cell names a concrete span to chase in the trace.
	fmt.Fprintf(&b, "\n%-10s %4s %7s %7s %7s %10s %12s\n", "BACKEND", "UP", "DUTY%", "QUEUE", "BATCH", "EXEC p99", "EXEMPLAR")
	for _, key := range cur.Keys("backend_up") {
		beID := telemetry.LabelValue(key, "backend")
		up, _ := cur.Gauge(key)
		duty, _ := cur.Gauge(telemetry.Key("backend_duty", "backend", beID))
		queue, _ := cur.Gauge(telemetry.Key("backend_queue_depth", "backend", beID))
		batch, _ := cur.Gauge(telemetry.Key("backend_batch_size", "backend", beID))
		upStr := "down"
		if up > 0 {
			upStr = "up"
		}
		p99, exemplar := "-", "-"
		if w, ok := cur.Windows[telemetry.Key("backend_exec_ms", "backend", beID)]; ok && w.Count > 0 {
			p99 = fmt.Sprintf("%.2fms", w.P99MS)
			if w.ExemplarID != 0 {
				exemplar = fmt.Sprintf("req %d", w.ExemplarID)
			}
		}
		fmt.Fprintf(&b, "%-10s %4s %7.1f %7.0f %7.1f %10s %12s\n", beID, upStr, 100*duty, queue, batch, p99, exemplar)
	}

	// Plan-change panel: the scheduler's most recent decisions up to the
	// displayed time — the "what changed right before" half of a tail
	// regression.
	var recentDiffs []trace.PlanDiffRecord
	for _, pd := range planDiffs {
		if pd.AtMS > cur.AtMS {
			break
		}
		recentDiffs = append(recentDiffs, pd)
	}
	if n := len(recentDiffs); n > 0 {
		shown := recentDiffs[max(0, n-3):]
		fmt.Fprintf(&b, "\nplan changes (last %d epochs):\n", len(shown))
		for _, pd := range shown {
			trace.WritePlanDiffText(&b, pd)
		}
	}

	// Alert panel: transitions up to the displayed time; firing set last.
	firing := map[string]telemetry.Alert{}
	var recent []telemetry.Alert
	for _, a := range alerts {
		if a.At > cur.At {
			break
		}
		recent = append(recent, a)
		key := a.Rule + "(" + a.Target + ")"
		if a.State == "firing" {
			firing[key] = a
		} else {
			delete(firing, key)
		}
	}
	if len(firing) > 0 {
		keys := make([]string, 0, len(firing))
		for k := range firing {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "\nFIRING:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s", k)
		}
		fmt.Fprintln(&b)
	}
	if n := len(recent); n > 0 {
		fmt.Fprintf(&b, "\nlast alerts:\n")
		lo := n - 5
		if lo < 0 {
			lo = 0
		}
		for _, a := range recent[lo:] {
			fmt.Fprintf(&b, "  t=%8.3fs %-8s %s(%s) %s\n", a.AtMS/1000, a.State, a.Rule, a.Target, a.Detail)
		}
	}
	return b.String()
}
