package main

import (
	"bytes"
	"testing"
	"time"

	"nexus/internal/telemetry"
)

// feedLine serializes one snapshot the way nexus-sim writes the stream.
func feedLine(t *testing.T, atMS float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	s := telemetry.Snapshot{At: time.Duration(atMS * float64(time.Millisecond)), AtMS: atMS}
	if err := telemetry.WriteSnapshotsJSONL(&buf, []telemetry.Snapshot{s}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFeedParserByteByByte appends a snapshot line one byte at a time — the
// worst-case torn tail a live tail can observe — and asserts the parser
// never errors and emits the snapshot exactly once, on the final newline.
func TestFeedParserByteByByte(t *testing.T) {
	line := feedLine(t, 1500)
	var p feedParser
	var got []telemetry.Snapshot
	for i, c := range line {
		snaps, err := p.advance([]byte{c})
		if err != nil {
			t.Fatalf("byte %d (%q): unexpected error: %v", i, c, err)
		}
		if len(snaps) > 0 && i != len(line)-1 {
			t.Fatalf("byte %d (%q): snapshot emitted before the trailing newline", i, c)
		}
		got = append(got, snaps...)
	}
	if len(got) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(got))
	}
	if got[0].AtMS != 1500 || got[0].At != 1500*time.Millisecond {
		t.Fatalf("snapshot round trip: got at_ms=%v at=%v", got[0].AtMS, got[0].At)
	}
}

// TestFeedParserChunks covers multi-line chunks split at arbitrary points:
// a chunk carrying one and a half lines yields the complete line now and
// the rest once its tail arrives.
func TestFeedParserChunks(t *testing.T) {
	a, b := feedLine(t, 500), feedLine(t, 1000)
	joined := append(append([]byte{}, a...), b...)
	cut := len(a) + len(b)/2
	var p feedParser
	snaps, err := p.advance(joined[:cut])
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].AtMS != 500 {
		t.Fatalf("first chunk: got %+v, want one snapshot at 500ms", snaps)
	}
	snaps, err = p.advance(joined[cut:])
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].AtMS != 1000 {
		t.Fatalf("second chunk: got %+v, want one snapshot at 1000ms", snaps)
	}
	if len(p.pending) != 0 {
		t.Fatalf("pending buffer not drained: %q", p.pending)
	}
}

// TestFeedParserTornTailRetries pins the retry semantics: a
// newline-terminated trailing line that does not parse is held back, not
// fatal — the watcher polls again rather than exiting. Only when complete
// records arrive after it (so it can never become valid) is it corrupt.
func TestFeedParserTornTailRetries(t *testing.T) {
	var p feedParser
	snaps, err := p.advance([]byte("{\"at_ms\":\n"))
	if err != nil {
		t.Fatalf("torn tail must be held for retry, got error: %v", err)
	}
	if len(snaps) != 0 {
		t.Fatalf("torn tail yielded snapshots: %+v", snaps)
	}

	// More bytes arrive, and the held line is now followed by a complete
	// record: it is genuinely corrupt and must be reported.
	if _, err := p.advance(feedLine(t, 2000)); err == nil {
		t.Fatal("corrupt non-tail line must be reported, got nil error")
	}
}

// TestFeedParserSkipsBlankLines mirrors the old reader's tolerance for
// blank separator lines.
func TestFeedParserSkipsBlankLines(t *testing.T) {
	var p feedParser
	input := append([]byte("\n\n"), feedLine(t, 250)...)
	snaps, err := p.advance(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].AtMS != 250 {
		t.Fatalf("got %+v, want one snapshot at 250ms", snaps)
	}
}
