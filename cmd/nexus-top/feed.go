package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"nexus/internal/telemetry"
)

// feedParser incrementally splits an append-only snapshot JSONL stream into
// snapshots, tolerating the torn tails a live tail routinely observes:
// bytes after the last newline stay buffered until the writer finishes the
// line, and a newline-terminated trailing line that fails to parse is held
// back and retried on the next poll instead of aborting the watch (a
// writer's flush boundary can land anywhere). A malformed line that is no
// longer the tail — complete records follow it — can never become valid,
// so that one is reported as corrupt.
type feedParser struct {
	pending []byte
}

// advance consumes the next chunk read from the feed and returns the
// snapshots completed by it.
func (p *feedParser) advance(chunk []byte) ([]telemetry.Snapshot, error) {
	p.pending = append(p.pending, chunk...)
	var out []telemetry.Snapshot
	rest := p.pending
	for {
		i := bytes.IndexByte(rest, '\n')
		if i < 0 {
			break
		}
		line := bytes.TrimSpace(rest[:i])
		if len(line) == 0 {
			rest = rest[i+1:]
			continue
		}
		var s telemetry.Snapshot
		if err := json.Unmarshal(line, &s); err != nil {
			if bytes.IndexByte(rest[i+1:], '\n') < 0 {
				// Torn tail: hold the line and retry once more arrives.
				break
			}
			return out, fmt.Errorf("parsing snapshot line: %w", err)
		}
		s.At = time.Duration(s.AtMS * float64(time.Millisecond))
		out = append(out, s)
		rest = rest[i+1:]
	}
	// rest aliases pending; copy handles the overlap.
	n := copy(p.pending, rest)
	p.pending = p.pending[:n]
	return out, nil
}
