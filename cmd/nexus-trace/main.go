// nexus-trace ingests the observability artifacts a traced run produces —
// an event trace (nexus-sim -trace-out) and optionally a control-plane
// audit log (nexus-sim -audit-out) — and prints the breakdowns the paper's
// evaluation leans on: per-stage latency p50/p99 (dispatch vs. queue vs.
// GPU vs. total), drop attribution by cause, and per-GPU duty-cycle
// utilization timelines. It can also re-export the trace in Chrome
// trace-event format for chrome://tracing / Perfetto.
//
//	nexus-sim -app game -rate 300 -trace-out /tmp/trace.json -audit -audit-out /tmp/audit.json
//	nexus-trace -trace /tmp/trace.json -audit /tmp/audit.json
//	nexus-trace -trace /tmp/trace.json -chrome /tmp/chrome.json
//	nexus-trace -trace - < /tmp/trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"nexus/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "event trace JSON ('-' = stdin)")
	auditPath := flag.String("audit", "", "control-plane audit log JSON (optional)")
	chromeOut := flag.String("chrome", "", "also export the trace as Chrome trace-event JSON to this file")
	flag.Parse()

	if *tracePath == "" && *auditPath == "" {
		fmt.Fprintln(os.Stderr, "nexus-trace: need -trace and/or -audit")
		flag.Usage()
		os.Exit(2)
	}

	var events []trace.Event
	if *tracePath != "" {
		var err error
		events, err = loadEvents(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %d events\n", len(events))
		if err := trace.Analyze(events).WriteReport(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *auditPath != "" {
		f, err := os.Open(*auditPath)
		if err != nil {
			log.Fatal(err)
		}
		audit, err := trace.ReadAudit(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("control-plane audit log")
		if err := audit.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *chromeOut != "" {
		if events == nil {
			log.Fatal("nexus-trace: -chrome needs -trace")
		}
		f, err := os.Create(*chromeOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteChrome(f, events); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chrome trace written to %s (load in chrome://tracing)\n", *chromeOut)
	}
}

// loadEvents reads a trace file (or stdin for "-") and refuses empty or
// truncated inputs: analyzer tables over zero events are always a mistake
// upstream (a crashed run, a wrong path), and printing them as empty
// success hides it. Callers exit non-zero on the returned error.
func loadEvents(path string) ([]trace.Event, error) {
	var r io.Reader = os.Stdin
	name := "stdin"
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
		name = path
	}
	events, err := trace.ReadJSON(r)
	if err != nil {
		return nil, fmt.Errorf("nexus-trace: %s: %w", name, err)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("nexus-trace: %s contains no events (was the run traced? see nexus-sim -trace-out)", name)
	}
	return events, nil
}
