package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadEventsEmptyFile(t *testing.T) {
	p := writeTemp(t, "empty.json", "")
	if _, err := loadEvents(p); err == nil {
		t.Fatal("empty trace file must be an error, not empty tables")
	} else if !strings.Contains(err.Error(), "empty input") {
		t.Fatalf("want an empty-input explanation, got: %v", err)
	}
}

func TestLoadEventsTruncatedFile(t *testing.T) {
	p := writeTemp(t, "trunc.json", `[{"at_ms":1,"kind":"arrive","req"`)
	if _, err := loadEvents(p); err == nil {
		t.Fatal("truncated trace file must be an error")
	} else if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want a truncation explanation, got: %v", err)
	}
}

func TestLoadEventsZeroEvents(t *testing.T) {
	p := writeTemp(t, "zero.json", `[]`)
	if _, err := loadEvents(p); err == nil {
		t.Fatal("a trace with zero events must be an error")
	} else if !strings.Contains(err.Error(), "contains no events") {
		t.Fatalf("want a no-events explanation, got: %v", err)
	}
}

func TestLoadEventsValid(t *testing.T) {
	p := writeTemp(t, "ok.json", `[{"at_ms":1,"kind":"arrive","req":1,"session":"s","batch":0}]`)
	events, err := loadEvents(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
}

func TestLoadEventsMissingFile(t *testing.T) {
	if _, err := loadEvents(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file must be an error")
	}
}
