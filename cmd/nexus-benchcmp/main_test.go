package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, entries []Entry) string {
	t.Helper()
	data, err := json.Marshal(Report{Benchmarks: entries})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCompare(t *testing.T, base, cur []Entry, tolerance float64) (bool, string) {
	t.Helper()
	failed, out, _ := runCompareOpts(t, base, cur, tolerance, false)
	return failed, out
}

func runCompareOpts(t *testing.T, base, cur []Entry, tolerance float64, allowNew bool) (bool, string, string) {
	t.Helper()
	dir := t.TempDir()
	basePath := writeReport(t, dir, "base.json", base)
	curPath := writeReport(t, dir, "cur.json", cur)
	var buf, warn bytes.Buffer
	failed, err := compare(basePath, curPath, tolerance, allowNew, &buf, &warn)
	if err != nil {
		t.Fatal(err)
	}
	return failed, buf.String(), warn.String()
}

func TestCompareOK(t *testing.T) {
	base := []Entry{{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: 10}}
	cur := []Entry{{Name: "BenchmarkA", NsPerOp: 1050, AllocsOp: 10}}
	failed, out := runCompare(t, base, cur, 0.10)
	if failed {
		t.Fatalf("within-tolerance run failed:\n%s", out)
	}
}

func TestCompareRegression(t *testing.T) {
	base := []Entry{{Name: "BenchmarkA", NsPerOp: 1000}}
	cur := []Entry{{Name: "BenchmarkA", NsPerOp: 1200}}
	failed, out := runCompare(t, base, cur, 0.10)
	if !failed || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("20%% ns/op regression passed:\n%s", out)
	}
}

// A benchmark absent from the current run must fail: a tracked hot path
// silently vanishing would otherwise rot the gate.
func TestCompareMissingFromCurrentFails(t *testing.T) {
	base := []Entry{{Name: "BenchmarkGone", NsPerOp: 1000}}
	failed, out := runCompare(t, base, nil, 0.10)
	if !failed || !strings.Contains(out, "MISSING") {
		t.Fatalf("benchmark missing from current passed:\n%s", out)
	}
}

// A benchmark absent from the baseline must fail too — until the baseline
// is regenerated, the new benchmark has no gate at all.
func TestCompareNewWithoutBaselineFails(t *testing.T) {
	cur := []Entry{{Name: "BenchmarkNew", NsPerOp: 1000}}
	failed, out := runCompare(t, nil, cur, 0.10)
	if !failed || !strings.Contains(out, "NEW (no baseline)") {
		t.Fatalf("benchmark missing from baseline passed:\n%s", out)
	}
}

// -allow-new lets a PR introduce a benchmark without hand-editing the
// baseline; regressions on tracked benchmarks still fail.
func TestCompareAllowNewPasses(t *testing.T) {
	base := []Entry{{Name: "BenchmarkA", NsPerOp: 1000}}
	cur := []Entry{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkNew", NsPerOp: 1000},
	}
	failed, out, _ := runCompareOpts(t, base, cur, 0.10, true)
	if failed || !strings.Contains(out, "NEW (allowed)") {
		t.Fatalf("new benchmark failed under -allow-new:\n%s", out)
	}
}

// A baseline entry with fewer than 3 iterations warns on stderr — the 10%
// gate is noise-prone against single-iteration measurements — but does not
// fail the gate by itself.
func TestCompareLowItersWarns(t *testing.T) {
	base := []Entry{
		{Name: "BenchmarkShaky", Iters: 1, NsPerOp: 1000},
		{Name: "BenchmarkSolid", Iters: 100, NsPerOp: 1000},
	}
	cur := []Entry{
		{Name: "BenchmarkShaky", Iters: 1, NsPerOp: 1000},
		{Name: "BenchmarkSolid", Iters: 100, NsPerOp: 1000},
	}
	failed, out, warn := runCompareOpts(t, base, cur, 0.10, false)
	if failed {
		t.Fatalf("low-iters baseline failed the gate:\n%s", out)
	}
	if !strings.Contains(warn, "BenchmarkShaky") || !strings.Contains(warn, "only 1 iteration") {
		t.Fatalf("no low-iters warning for BenchmarkShaky:\n%s", warn)
	}
	if strings.Contains(warn, "BenchmarkSolid") {
		t.Fatalf("well-measured benchmark warned:\n%s", warn)
	}
}

// -allow-new must not weaken the missing-benchmark check: a tracked path
// that vanished from the run still fails the gate.
func TestCompareAllowNewStillFailsMissing(t *testing.T) {
	base := []Entry{{Name: "BenchmarkGone", NsPerOp: 1000}}
	cur := []Entry{{Name: "BenchmarkNew", NsPerOp: 1000}}
	failed, out, _ := runCompareOpts(t, base, cur, 0.10, true)
	if !failed || !strings.Contains(out, "MISSING") {
		t.Fatalf("missing benchmark passed under -allow-new:\n%s", out)
	}
}

// A zero ns/op baseline entry is corrupt data, not a free pass.
func TestCompareZeroBaselineFails(t *testing.T) {
	base := []Entry{{Name: "BenchmarkA", NsPerOp: 0}}
	cur := []Entry{{Name: "BenchmarkA", NsPerOp: 1000}}
	failed, out := runCompare(t, base, cur, 0.10)
	if !failed || !strings.Contains(out, "BAD BASELINE") {
		t.Fatalf("zero baseline passed:\n%s", out)
	}
}

// An allocation-free baseline that starts allocating is an unbounded
// regression, not delta 0.
func TestCompareAllocsFromZeroFails(t *testing.T) {
	base := []Entry{{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: 0}}
	cur := []Entry{{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: 5}}
	failed, out := runCompare(t, base, cur, 0.10)
	if !failed || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("allocs 0 -> 5 passed:\n%s", out)
	}
}

func TestDelta(t *testing.T) {
	for _, tc := range []struct {
		base, cur, want float64
	}{
		{100, 110, 0.1},
		{100, 90, -0.1},
		{0, 0, 0},
		{0, 1, inf},
		{-5, 3, inf},
	} {
		if got := delta(tc.base, tc.cur); got != tc.want &&
			!(tc.want != 0 && got > tc.want-1e-12 && got < tc.want+1e-12) {
			t.Fatalf("delta(%v, %v) = %v, want %v", tc.base, tc.cur, got, tc.want)
		}
	}
}

func TestParseBenchStripsGOMAXPROCS(t *testing.T) {
	in := strings.NewReader(`
goos: linux
BenchmarkDispatchHotPath-8   	       2	3061234567 ns/op	     120 B/op	       3 allocs/op
BenchmarkOther   	      10	  1000000 ns/op
PASS
`)
	entries, err := parseBench(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "BenchmarkDispatchHotPath" {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].AllocsOp != 3 || entries[1].NsPerOp != 1000000 {
		t.Fatalf("entries = %+v", entries)
	}
}
