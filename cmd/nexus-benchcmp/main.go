// nexus-benchcmp converts `go test -bench` output into a stable JSON form
// and compares two such files for performance regressions.
//
//	go test -run=NONE -bench=. -benchmem ./... | nexus-benchcmp -parse -o results/BENCH_pr.json
//	nexus-benchcmp -baseline results/BENCH_baseline.json -current results/BENCH_pr.json -tolerance 0.10
//
// Comparison exits non-zero when any benchmark present in both files shows
// ns/op or allocs/op above baseline by more than the tolerance — and also
// when a benchmark exists on only one side, or a baseline entry carries a
// non-positive ns/op. A one-sided benchmark has no meaningful delta, so
// treating it as passing would let a new (or silently vanished) hot path
// bypass the regression gate; adding or retiring a benchmark requires
// regenerating the baseline in the same change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_op"`
	BPerOp   float64 `json:"b_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Benchmarks []Entry `json:"benchmarks"`
}

// parseBench reads `go test -bench` text and extracts benchmark lines:
//
//	BenchmarkName-8   12  95014552 ns/op  1048600 B/op  13213 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so results compare across machines.
func parseBench(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := Entry{Name: name, Iters: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BPerOp = v
			case "allocs/op":
				e.AllocsOp = v
			}
		}
		if e.NsPerOp > 0 {
			out = append(out, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func load(path string) (map[string]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Entry, len(rep.Benchmarks))
	for _, e := range rep.Benchmarks {
		m[e.Name] = e
	}
	return m, nil
}

// delta returns the relative change current/base - 1. A zero base with a
// positive current is an unbounded regression (an allocation-free path that
// started allocating); base and current both zero is no change.
func delta(base, cur float64) float64 {
	if base <= 0 {
		if cur > 0 {
			return inf
		}
		return 0
	}
	return cur/base - 1
}

// inf marks a delta with no meaningful ratio (zero baseline, nonzero
// current); it always exceeds any tolerance.
var inf = 1e308

// minStableIters is the iteration count below which a baseline entry is
// considered noise-prone: with one or two iterations, run-to-run variance
// alone can trip (or mask) the tolerance gate.
const minStableIters = 3

// compare gates cur against base, writing the verdict table to w and
// noise-caveat warnings (baseline entries measured with fewer than
// minStableIters iterations) to warnw.
func compare(basePath, curPath string, tolerance float64, allowNew bool, w, warnw io.Writer) (failed bool, err error) {
	base, err := load(basePath)
	if err != nil {
		return false, err
	}
	cur, err := load(curPath)
	if err != nil {
		return false, err
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-40s %15s %15s %15s\n", "benchmark", "ns/op Δ", "allocs/op Δ", "verdict")
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			// No current measurement: a tracked hot path silently vanished
			// from the run. Passing here would let the gate rot.
			fmt.Fprintf(w, "%-40s %15s %15s %15s\n", name, "-", "-", "MISSING")
			failed = true
			continue
		}
		if b.Iters > 0 && b.Iters < minStableIters {
			fmt.Fprintf(warnw, "nexus-benchcmp: warning: baseline %s was measured with only %d iteration(s); the %.0f%% gate is noise-prone for it — prefer a longer -benchtime when regenerating the baseline\n",
				name, b.Iters, tolerance*100)
		}
		if b.NsPerOp <= 0 {
			// A zero/negative baseline ns/op means the baseline file is
			// corrupt or hand-edited; there is nothing to gate against.
			fmt.Fprintf(w, "%-40s %15s %15s %15s\n", name, "-", "-", "BAD BASELINE")
			failed = true
			continue
		}
		dNs := delta(b.NsPerOp, c.NsPerOp)
		dAl := delta(b.AllocsOp, c.AllocsOp)
		verdict := "ok"
		if dNs > tolerance || dAl > tolerance {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Fprintf(w, "%-40s %14s%% %14s%% %15s\n", name, pct(dNs), pct(dAl), verdict)
	}
	extra := make([]string, 0)
	for name := range cur {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		// A benchmark with no baseline has no gate at all. By default that
		// fails until the baseline is regenerated to include it; -allow-new
		// lets the PR introducing a benchmark pass the gate, while missing
		// benchmarks (tracked paths that vanished) still fail above.
		if allowNew {
			fmt.Fprintf(w, "%-40s %15s %15s %15s\n", name, "-", "-", "NEW (allowed)")
			continue
		}
		fmt.Fprintf(w, "%-40s %15s %15s %15s\n", name, "-", "-", "NEW (no baseline)")
		failed = true
	}
	return failed, nil
}

// pct renders a delta as a signed percentage ("+∞" for the zero-baseline
// sentinel).
func pct(d float64) string {
	if d >= inf {
		return "+∞"
	}
	return fmt.Sprintf("%+.1f", 100*d)
}

func main() {
	parse := flag.Bool("parse", false, "parse `go test -bench` output from stdin into JSON")
	out := flag.String("o", "", "output path for -parse (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON file")
	current := flag.String("current", "", "current JSON file to compare against the baseline")
	tolerance := flag.Float64("tolerance", 0.10, "relative regression tolerance on ns/op and allocs/op")
	allowNew := flag.Bool("allow-new", false, "pass benchmarks absent from the baseline (missing ones still fail)")
	flag.Parse()

	switch {
	case *parse:
		entries, err := parseBench(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(entries) == 0 {
			fmt.Fprintln(os.Stderr, "nexus-benchcmp: no benchmark lines found on stdin")
			os.Exit(1)
		}
		data, err := json.MarshalIndent(Report{Benchmarks: entries}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *out == "" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *baseline != "" && *current != "":
		failed, err := compare(*baseline, *current, *tolerance, *allowNew, os.Stdout, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if failed {
			fmt.Fprintf(os.Stderr, "nexus-benchcmp: gate failed — regression beyond %.0f%% tolerance, or a benchmark missing from baseline/current\n", *tolerance*100)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: nexus-benchcmp -parse [-o file.json] < bench.txt")
		fmt.Fprintln(os.Stderr, "       nexus-benchcmp -baseline a.json -current b.json [-tolerance 0.10]")
		fmt.Fprintln(os.Stderr, "caveat: baseline entries measured with iters < 3 (e.g. single-iteration")
		fmt.Fprintln(os.Stderr, "  long-running benchmarks) make the tolerance gate noise-prone; compare")
		fmt.Fprintln(os.Stderr, "  warns on stderr for each such entry. Regenerate baselines with a longer")
		fmt.Fprintln(os.Stderr, "  -benchtime where practical.")
		os.Exit(2)
	}
}
