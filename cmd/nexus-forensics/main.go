// nexus-forensics is the tail-latency forensics reader: it ingests the
// artifacts an instrumented run leaves behind and answers "where did the
// p99 go, and what did the scheduler change right before". It reads any
// combination of
//
//   - flight-recorder dump bundles (nexus-sim -forensics-out): per-anomaly
//     time-correlated captures of spans, placements, plan diffs, chaos
//     edges, and metric samples, each rendered with its own blame breakdown;
//
//   - a raw event trace (nexus-sim -trace-out): rendered as the per-session
//     p99 blame breakdown — admission wait vs. dispatch vs. batch-formation
//     stall vs. queue vs. GPU service vs. co-residency interference;
//
//   - a control-plane audit log (nexus-sim -audit -audit-out): rendered as
//     the plan-diff history, one structured change log per epoch.
//
//     nexus-sim -app game -rate 300 -forensics -forensics-out /tmp/dumps.jsonl
//     nexus-forensics -dumps /tmp/dumps.jsonl
//     nexus-forensics -trace /tmp/trace.json          # blame breakdown only
//     nexus-forensics -audit /tmp/audit.json          # plan-diff history only
//     nexus-forensics -dumps - < /tmp/dumps.jsonl     # stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"nexus/internal/forensics"
	"nexus/internal/trace"
)

func main() {
	dumpsPath := flag.String("dumps", "", "flight-recorder dump JSONL ('-' = stdin)")
	tracePath := flag.String("trace", "", "event trace JSON ('-' = stdin); prints the blame breakdown")
	auditPath := flag.String("audit", "", "control-plane audit log JSON; prints the plan-diff history")
	flag.Parse()

	if *dumpsPath == "" && *tracePath == "" && *auditPath == "" {
		fmt.Fprintln(os.Stderr, "nexus-forensics: need -dumps, -trace, and/or -audit")
		flag.Usage()
		os.Exit(2)
	}

	if *dumpsPath != "" {
		dumps, err := loadDumps(*dumpsPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flight recorder: %d dump bundle(s)\n", len(dumps))
		for i := range dumps {
			fmt.Println()
			if err := dumps[i].WriteText(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
	}

	if *tracePath != "" {
		events, err := loadTrace(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		blames := trace.SessionBlames(trace.AttributeBlame(events))
		if len(blames) == 0 {
			log.Fatalf("nexus-forensics: %s has no attributable requests (need enqueue+execute+complete spans)", *tracePath)
		}
		fmt.Printf("trace: %d events\n", len(events))
		if err := trace.WriteBlameReport(os.Stdout, blames); err != nil {
			log.Fatal(err)
		}
	}

	if *auditPath != "" {
		f, err := os.Open(*auditPath)
		if err != nil {
			log.Fatal(err)
		}
		audit, err := trace.ReadAudit(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		diffs := audit.PlanDiffs()
		fmt.Printf("plan-diff history: %d epoch(s)\n", len(diffs))
		for _, pd := range diffs {
			if err := trace.WritePlanDiffText(os.Stdout, pd); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// loadDumps reads a dump-bundle JSONL file (or stdin for "-"), refusing
// empty inputs: an empty dump file means no alert ever fired — worth saying
// out loud rather than printing empty success.
func loadDumps(path string) ([]forensics.Dump, error) {
	var r io.Reader = os.Stdin
	name := "stdin"
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
		name = path
	}
	dumps, err := forensics.ReadDumpsJSONL(r)
	if err != nil {
		return nil, fmt.Errorf("nexus-forensics: %s: %w", name, err)
	}
	if len(dumps) == 0 {
		return nil, fmt.Errorf("nexus-forensics: %s contains no dump bundles (did any alert fire? see nexus-sim -forensics)", name)
	}
	return dumps, nil
}

// loadTrace reads a trace event file (or stdin for "-").
func loadTrace(path string) ([]trace.Event, error) {
	var r io.Reader = os.Stdin
	name := "stdin"
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
		name = path
	}
	events, err := trace.ReadJSON(r)
	if err != nil {
		return nil, fmt.Errorf("nexus-forensics: %s: %w", name, err)
	}
	return events, nil
}
