// nexus-profile prints the batching profiles the management plane derives
// for catalog models (§5 "Model ingest" / "profiler"): batched execution
// latency ℓ(b), throughput, the largest SLO-safe batch, and memory needs.
//
//	nexus-profile                       # summary of every catalog model
//	nexus-profile -model resnet50       # ℓ(b) table for one model
//	nexus-profile -gpu v100 -slo 50ms   # different device / SLO column
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"nexus/internal/model"
	"nexus/internal/profiler"
)

func main() {
	gpuFlag := flag.String("gpu", "gtx1080ti", "GPU type: gtx1080ti, k80, v100")
	modelFlag := flag.String("model", "", "print the full l(b) table for one model")
	sloFlag := flag.Duration("slo", 100*time.Millisecond, "SLO for the max-batch column")
	exportModels := flag.String("export-models", "", "write the model database as JSON to this file")
	exportProfiles := flag.String("export-profiles", "", "write the profile database as JSON to this file")
	flag.Parse()

	gpu := profiler.GPUType(*gpuFlag)
	if _, err := profiler.Spec(gpu); err != nil {
		log.Fatal(err)
	}
	mdb := model.Catalog()
	pdb, err := profiler.CatalogProfiles(mdb)
	if err != nil {
		log.Fatal(err)
	}
	if *exportModels != "" {
		if err := writeFile(*exportModels, mdb.Save); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *exportModels)
	}
	if *exportProfiles != "" {
		if err := writeFile(*exportProfiles, pdb.Save); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *exportProfiles)
	}
	if *exportModels != "" || *exportProfiles != "" {
		return
	}

	if *modelFlag != "" {
		p, err := pdb.Get(*modelFlag, gpu)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batching profile: %s on %s (alpha=%v beta=%v)\n", p.ModelID, p.GPU, p.Alpha, p.Beta)
		fmt.Printf("%-8s %-14s %-12s\n", "batch", "latency l(b)", "req/s")
		for b := 1; b <= p.MaxBatch; b *= 2 {
			fmt.Printf("%-8d %-14v %-12.1f\n", b, p.BatchLatency(b), p.Throughput(b))
		}
		return
	}

	fmt.Printf("catalog profiles on %s (SLO column at %v)\n", gpu, *sloFlag)
	fmt.Printf("%-15s %-12s %-12s %-10s %-12s %-10s\n",
		"model", "l(1)", "l(32)", "B(slo)", "T(slo) r/s", "mem")
	for _, id := range model.CatalogIDs() {
		p, err := pdb.Get(id, gpu)
		if err != nil {
			continue
		}
		b, tput := p.SaturateBatch(*sloFlag)
		bCol, tCol := "-", "-"
		if b > 0 {
			bCol = fmt.Sprint(b)
			tCol = fmt.Sprintf("%.0f", tput)
		}
		fmt.Printf("%-15s %-12v %-12v %-10s %-12s %-10s\n",
			id, p.BatchLatency(1), p.BatchLatency(min(32, p.MaxBatch)),
			bCol, tCol, fmt.Sprintf("%.2fGB", float64(p.MemBase)/float64(1<<30)))
	}
	_ = os.Stdout
}

// writeFile creates path and streams save into it.
func writeFile(path string, save func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
