// nexus-bench regenerates the paper's tables and figures.
//
//	nexus-bench -list                 # show available experiments
//	nexus-bench -run fig10,fig11      # run specific experiments
//	nexus-bench -run all -short       # run everything at reduced precision
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nexus/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "comma-separated experiment IDs, or 'all'")
	short := flag.Bool("short", false, "reduced simulation horizons and search precision")
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.List() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Description)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id>[,<id>...] or -run all")
		}
		return
	}

	var ids []string
	if *run == "all" {
		for _, e := range experiments.List() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}
	exitCode := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, err := experiments.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exitCode = 1
			continue
		}
		start := time.Now()
		table, err := e.Run(*short)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			exitCode = 1
			continue
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exitCode)
}
