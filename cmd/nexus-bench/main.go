// nexus-bench regenerates the paper's tables and figures.
//
//	nexus-bench -list                 # show available experiments
//	nexus-bench -run fig10,fig11      # run specific experiments
//	nexus-bench -run all -short       # run everything at reduced precision
//	nexus-bench -run all -parallel 8  # bound the worker pool at 8
//	nexus-bench -run all -json out.json
//	nexus-bench -run fig13 -short -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Experiments run concurrently through the runner pool (bounded by
// -parallel, default GOMAXPROCS); tables are still printed in request
// order, and the numbers are identical at any worker count because every
// sweep cell simulates on its own isolated clock.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"nexus/internal/experiments"
	"nexus/internal/runner"
)

// jsonResult is the machine-readable record for one experiment.
type jsonResult struct {
	ID          string     `json:"id"`
	Description string     `json:"description"`
	WallMS      float64    `json:"wall_ms"`
	Events      uint64     `json:"events"`
	Header      []string   `json:"header"`
	Rows        [][]string `json:"rows"`
	Error       string     `json:"error,omitempty"`

	rendered string // table text for ordered stdout printing
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Short   bool         `json:"short"`
	Workers int          `json:"workers"`
	WallMS  float64      `json:"wall_ms"`
	Results []jsonResult `json:"results"`
}

// main delegates to run so the profiling defers fire before os.Exit.
func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list experiments and exit")
	runIDs := flag.String("run", "", "comma-separated experiment IDs, or 'all'")
	short := flag.Bool("short", false, "reduced simulation horizons and search precision")
	parallel := flag.Int("parallel", 0, "worker pool bound (0 = GOMAXPROCS, 1 = sequential)")
	jsonPath := flag.String("json", "", "write machine-readable results to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this path on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list || *runIDs == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.List() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Description)
		}
		if *runIDs == "" && !*list {
			fmt.Println("\nuse -run <id>[,<id>...] or -run all")
		}
		return 0
	}

	runner.SetDefaultWorkers(*parallel)

	var ids []string
	if *runIDs == "all" {
		for _, e := range experiments.List() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	// Run every experiment through the same pool that fans out their sweep
	// cells; results come back in request order regardless of completion
	// order.
	start := time.Now()
	results := runner.MapNamed("experiments", len(ids), func(i int) jsonResult {
		e, err := experiments.Get(ids[i])
		if err != nil {
			return jsonResult{ID: ids[i], Error: err.Error()}
		}
		rc := experiments.NewRunContext(*short)
		t0 := time.Now()
		table, err := e.Run(rc)
		res := jsonResult{
			ID:          e.ID,
			Description: e.Description,
			WallMS:      float64(time.Since(t0).Microseconds()) / 1000,
			Events:      rc.Events(),
		}
		if err != nil {
			res.Error = err.Error()
			return res
		}
		res.Header = table.Header
		res.Rows = table.Rows
		// Keep the rendered table for ordered printing below.
		res.rendered = table.String()
		return res
	})
	wall := time.Since(start)

	// Stdout carries only deterministic content (tables and event counts),
	// so it is byte-identical at any -parallel value; wall-clock timing
	// goes to stderr.
	exitCode := 0
	for _, res := range results {
		if res.Error != "" {
			fmt.Fprintf(os.Stderr, "%s: %s\n", res.ID, res.Error)
			exitCode = 1
			continue
		}
		fmt.Print(res.rendered)
		fmt.Printf("  (%d simulation events)\n\n", res.Events)
		fmt.Fprintf(os.Stderr, "%s: %.0fms\n", res.ID, res.WallMS)
	}
	fmt.Fprintf(os.Stderr, "total: %.0fms with %d workers\n", float64(wall.Microseconds())/1000, runner.DefaultWorkers())

	if *jsonPath != "" {
		report := jsonReport{
			Short:   *short,
			Workers: runner.DefaultWorkers(),
			WallMS:  float64(wall.Microseconds()) / 1000,
			Results: results,
		}
		data, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exitCode = 1
		} else if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exitCode = 1
		}
	}
	return exitCode
}
