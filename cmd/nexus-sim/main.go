// nexus-sim runs an ad-hoc simulated deployment — one of the paper's
// applications, or a declarative JSON spec — and reports serving
// statistics and the per-second load / GPU-usage / bad-rate panels of
// Figure 13.
//
//	nexus-sim -app traffic -rate 200 -gpus 16 -duration 60s
//	nexus-sim -app all -scale 0.3 -gpus 32 -system clipper
//	nexus-sim -spec deployment.json -duration 120s
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"nexus/internal/apps"
	"nexus/internal/cluster"
	"nexus/internal/forensics"
	"nexus/internal/spec"
	"nexus/internal/telemetry"
)

func main() {
	system := flag.String("system", "nexus", "nexus | nexus-parallel | clipper | tfserving")
	app := flag.String("app", "traffic", "game | traffic | dance | bb | bike | amber | logo | all")
	gpus := flag.Int("gpus", 16, "GPU pool size")
	rate := flag.Float64("rate", 100, "offered request/query rate for the app")
	scale := flag.Float64("scale", 0.2, "workload scale for -app all")
	duration := flag.Duration("duration", 60*time.Second, "measured virtual time")
	epoch := flag.Duration("epoch", 10*time.Second, "control-plane epoch")
	seed := flag.Int64("seed", 1, "workload seed")
	fixed := flag.Bool("fixed", false, "treat the pool as a fixed cluster (spread spare GPUs)")
	rush := flag.Bool("rush", false, "rush-hour traffic (higher per-frame fan-out)")
	specPath := flag.String("spec", "", "JSON deployment spec (overrides -app/-system/-gpus)")
	traceN := flag.Int("trace", 0, "record and print the last N request lifecycle events")
	traceOut := flag.String("trace-out", "", "write the event trace as JSON to this file (implies tracing)")
	auditOn := flag.Bool("audit", false, "keep and print the control-plane audit log")
	auditOut := flag.String("audit-out", "", "write the audit log as JSON to this file (implies -audit)")
	deferDrops := flag.Bool("defer", false, "serve would-be-dropped requests late at low priority (§5 alternative)")
	telemInterval := flag.Duration("telemetry", 0, "live telemetry sampling interval (0 = off)")
	telemOut := flag.String("telemetry-out", "", "write telemetry snapshots as JSONL to this file (implies -telemetry; tail with nexus-top)")
	alertsOut := flag.String("alerts-out", "", "write the telemetry alert log as JSONL to this file (implies -telemetry)")
	telemListen := flag.String("telemetry-listen", "", "serve /metrics (Prometheus text), /alerts, /health on this address (implies -telemetry)")
	telemHold := flag.Duration("telemetry-hold", 0, "keep the telemetry endpoint up this long after the run finishes")
	wallTimings := flag.Bool("telemetry-wall", false, "measure real plan wall time (nondeterministic; needs -telemetry)")
	shards := flag.Int("shards", 0, "partition epoch planning across N parallel shards (0 = monolithic planner)")
	planHyst := flag.Float64("plan-hysteresis", 0, "relative rate band within which a quiet shard skips re-planning (needs -shards)")
	deltaRouting := flag.Bool("delta-routing", false, "push routing-table updates to frontends as per-session deltas")
	leaseTTL := flag.Duration("lease-ttl", 0, "routing-table lease TTL on each frontend (0 = no leases)")
	serveStale := flag.Bool("serve-stale", false, "keep routing on an expired lease instead of dropping (needs -lease-ttl)")
	retryBudget := flag.Int("retry-budget", 0, "exponential-backoff dispatch retries per request (0 = retry-once semantics off)")
	breakerN := flag.Int("breaker", 0, "consecutive dispatch failures that open a backend's circuit breaker (0 = off)")
	breakerCool := flag.Duration("breaker-cooloff", time.Second, "open-breaker cooloff before a half-open probe (needs -breaker)")
	recoveryCap := flag.Int("recovery-cap", 0, "max per-session route changes per post-outage push (needs -delta-routing; 0 = uncapped)")
	forensicsOn := flag.Bool("forensics", false, "arm the flight recorder (implies tracing, -audit, and -telemetry)")
	forensicsOut := flag.String("forensics-out", "", "write alert-triggered dump bundles as JSONL to this file (implies -forensics; read with nexus-forensics)")
	forensicsWindow := flag.Duration("forensics-window", 0, "capture horizon before each anomaly (0 = 5s; needs -forensics)")
	selfObs := flag.Bool("telemetry-self", false, "export runtime self-observability gauges (goroutines, heap, GC, ring/arena occupancy; nondeterministic, needs -telemetry)")
	flag.Parse()

	// -trace-out without -trace records into a generously sized ring.
	if *traceOut != "" && *traceN == 0 {
		*traceN = 1 << 20
	}
	if *auditOut != "" {
		*auditOn = true
	}
	if *forensicsOut != "" || *forensicsWindow > 0 {
		*forensicsOn = true
	}
	if (*telemOut != "" || *alertsOut != "" || *telemListen != "") && *telemInterval == 0 {
		*telemInterval = telemetry.DefaultInterval
	}
	var telemCfg *telemetry.Config
	if *telemInterval > 0 {
		telemCfg = &telemetry.Config{Interval: *telemInterval, WallTimings: *wallTimings, SelfObserve: *selfObs}
	}
	var forensicsCfg *forensics.Config
	if *forensicsOn {
		forensicsCfg = &forensics.Config{Window: *forensicsWindow}
	}

	tOpts := telemetryOpts{
		out: *telemOut, alerts: *alertsOut, listen: *telemListen, hold: *telemHold,
		forensics: *forensicsOut,
	}

	var d *cluster.Deployment
	var err error
	if *specPath != "" {
		f, ferr := os.Open(*specPath)
		if ferr != nil {
			log.Fatal(ferr)
		}
		doc, perr := spec.Parse(f)
		f.Close()
		if perr != nil {
			log.Fatal(perr)
		}
		d, err = doc.Build()
		if err != nil {
			log.Fatal(err)
		}
		if telemCfg != nil {
			fmt.Fprintln(os.Stderr, "nexus-sim: -telemetry* flags are ignored with -spec (enable telemetry in the spec builder)")
		}
		runAndReport(d, *duration, *specPath, d.Pool.Capacity(), *traceOut, *auditOut, telemetryOpts{})
		return
	}
	d, err = cluster.New(cluster.Config{
		System:         cluster.System(*system),
		Features:       cluster.AllFeatures(),
		GPUs:           *gpus,
		Seed:           *seed,
		Epoch:          *epoch,
		FixedCluster:   *fixed,
		TraceCapacity:  *traceN,
		Audit:          *auditOn,
		DeferDropped:   *deferDrops,
		Telemetry:      telemCfg,
		PlannerShards:  *shards,
		PlanHysteresis: *planHyst,
		DeltaRouting:   *deltaRouting,
		Forensics:      forensicsCfg,

		RouteLeaseTTL:           *leaseTTL,
		ServeStale:              *serveStale,
		RetryBudget:             *retryBudget,
		BreakerThreshold:        *breakerN,
		BreakerCooloff:          *breakerCool,
		RecoveryMaxRouteChanges: *recoveryCap,
	})
	if err != nil {
		log.Fatal(err)
	}
	var builders []apps.Builder
	switch *app {
	case "game":
		builders = append(builders, apps.Game(20, *rate/7))
	case "traffic":
		builders = append(builders, apps.Traffic(20, *rate/20, *rush))
	case "dance":
		builders = append(builders, apps.Dance(*rate))
	case "bb":
		builders = append(builders, apps.Billboard(*rate))
	case "bike":
		builders = append(builders, apps.Bike(*rate))
	case "amber":
		builders = append(builders, apps.Amber(*rate))
	case "logo":
		builders = append(builders, apps.Logo(*rate))
	case "all":
		builders = apps.All(*scale)
	default:
		log.Fatalf("unknown app %q", *app)
	}
	for _, b := range builders {
		if _, err := apps.Deploy(d, b); err != nil {
			log.Fatal(err)
		}
	}
	runAndReport(d, *duration, fmt.Sprintf("%s/%s", *system, *app), *gpus, *traceOut, *auditOut, tOpts)
}

// telemetryOpts bundles the telemetry output destinations.
type telemetryOpts struct {
	out       string // snapshot JSONL path
	alerts    string // alert log JSONL path
	listen    string // HTTP address for live Prometheus scraping
	hold      time.Duration
	forensics string // flight-recorder dump JSONL path
}

// runAndReport executes the deployment and prints the standard panels.
func runAndReport(d *cluster.Deployment, duration time.Duration, label string, gpus int,
	traceOut, auditOut string, tOpts telemetryOpts) {
	if tOpts.listen != "" && d.Telemetry() != nil {
		// Serve the live endpoint while the simulation runs: /metrics reads
		// only the mutex-published latest snapshot, so scraping is race-free.
		srv := &http.Server{Addr: tOpts.listen, Handler: telemetry.Handler(d.Telemetry())}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}()
		fmt.Printf("telemetry: serving /metrics on %s\n", tOpts.listen)
	}
	bad, err := d.Run(duration)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("nexus-sim: %s for %v on %d GPUs\n", label, duration, gpus)
	fmt.Printf("  bad rate:     %.2f%%\n", 100*bad)
	fmt.Printf("  goodput:      %.1f req/s\n", d.Goodput(duration))
	fmt.Printf("  GPUs in use:  %.1f (avg)\n", d.AvgGPUsUsed())
	fmt.Printf("  unroutable:   %d\n", d.Unroutable())
	fmt.Println("\n  per-session:")
	for _, sid := range d.Recorder.SessionIDs() {
		s := d.Recorder.Session(sid)
		if s.Sent == 0 {
			continue
		}
		fmt.Printf("    %-22s sent=%7d good=%7d dropped=%5d late=%5d p50=%-10v p99=%v\n",
			sid, s.Sent, s.Good(), s.Dropped, s.Missed,
			s.Latency.Quantile(0.5), s.Latency.Quantile(0.99))
	}
	fmt.Println("\n  timeline (10s buckets): offered r/s | GPUs | bad%")
	step := 10
	for i := 0; i*step < int(duration.Seconds()); i++ {
		var offered, badN, goodN, g float64
		for j := i * step; j < (i+1)*step; j++ {
			offered += d.Arrivals.Sum(j)
			badN += d.BadEvts.Sum(j)
			goodN += d.GoodEvts.Sum(j)
			g += d.GPUsUsed.Mean(j)
		}
		badPct := 0.0
		if badN+goodN > 0 {
			badPct = 100 * badN / (badN + goodN)
		}
		fmt.Printf("    t=%3ds  %8.1f | %5.1f | %5.2f%%\n",
			(i+1)*step, offered/float64(step), g/float64(step), badPct)
	}
	if tr := d.Tracer(); tr != nil {
		if traceOut != "" {
			if err := writeFile(traceOut, tr.WriteJSON); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n  trace: %d of %d events written to %s (analyze with nexus-trace)\n",
				len(tr.Events()), tr.Total(), traceOut)
		} else {
			fmt.Printf("\n  trace (last %d of %d events):\n", len(tr.Events()), tr.Total())
			if err := tr.WriteText(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
	}
	if a := d.Audit(); a != nil {
		if auditOut != "" {
			if err := writeFile(auditOut, a.WriteJSON); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  audit log written to %s\n", auditOut)
		} else {
			fmt.Println("\n  control-plane audit log:")
			if err := a.WriteText(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
	}
	if fr := d.Flight(); fr != nil {
		dumps := fr.Dumps()
		fmt.Printf("\n  flight recorder: %d dump bundle(s), %d trigger(s) suppressed\n",
			len(dumps), fr.Suppressed())
		if tOpts.forensics != "" {
			if err := writeFile(tOpts.forensics, func(w io.Writer) error {
				return forensics.WriteDumpsJSONL(w, dumps)
			}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  dumps written to %s (read with nexus-forensics -dumps %s)\n",
				tOpts.forensics, tOpts.forensics)
		} else {
			for i := range dumps {
				if err := dumps[i].WriteText(prefixed(os.Stdout, "  ")); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	if c := d.Telemetry(); c != nil {
		fmt.Printf("\n  telemetry: %d snapshots, %d alert transitions, %d health reports\n",
			len(c.Snapshots()), len(c.Alerts()), len(c.Health()))
		if alerts := c.Alerts(); len(alerts) > 0 {
			fmt.Println("  alert log:")
			if err := c.WriteAlertsText(prefixed(os.Stdout, "    ")); err != nil {
				log.Fatal(err)
			}
		}
		if hs := c.Health(); len(hs) > 0 {
			fmt.Println("  scheduler health (last epoch):")
			if err := hs[len(hs)-1].WriteText(prefixed(os.Stdout, "    ")); err != nil {
				log.Fatal(err)
			}
		}
		if tOpts.out != "" {
			if err := writeFile(tOpts.out, func(w io.Writer) error {
				return telemetry.WriteSnapshotsJSONL(w, c.Snapshots())
			}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  snapshots written to %s (view with nexus-top -in %s)\n", tOpts.out, tOpts.out)
		}
		if tOpts.alerts != "" {
			if err := writeFile(tOpts.alerts, func(w io.Writer) error {
				return telemetry.WriteAlertsJSONL(w, c.Alerts())
			}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  alert log written to %s\n", tOpts.alerts)
		}
		if tOpts.listen != "" && tOpts.hold > 0 {
			fmt.Printf("  holding %s for %v (scrape %s/metrics)\n", tOpts.listen, tOpts.hold, tOpts.listen)
			time.Sleep(tOpts.hold)
		}
	}
}

// prefixed returns a writer that indents every line it forwards.
func prefixed(w io.Writer, prefix string) io.Writer {
	return &prefixWriter{w: w, prefix: []byte(prefix), atLineStart: true}
}

type prefixWriter struct {
	w           io.Writer
	prefix      []byte
	atLineStart bool
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	n := 0
	for len(b) > 0 {
		if p.atLineStart {
			if _, err := p.w.Write(p.prefix); err != nil {
				return n, err
			}
			p.atLineStart = false
		}
		i := 0
		for i < len(b) && b[i] != '\n' {
			i++
		}
		if i < len(b) {
			i++ // include the newline
			p.atLineStart = true
		}
		m, err := p.w.Write(b[:i])
		n += m
		if err != nil {
			return n, err
		}
		b = b[i:]
	}
	return n, nil
}

// writeFile streams write into path, creating or truncating it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
