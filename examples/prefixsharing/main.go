// Prefix sharing (§6.3, Figure 15): N ResNet-50 variants specialized by
// transfer learning differ only in their final layer(s). Without prefix
// batching each variant batches alone and keeps a full copy of the model
// in GPU memory; with prefix batching the shared trunk executes as one
// batch and only the tiny suffixes are per-variant.
//
//	go run ./examples/prefixsharing
package main

import (
	"fmt"
	"log"
	"time"

	"nexus"
)

func main() {
	mdb := nexus.Catalog()
	base := mdb.MustGet(nexus.ResNet50)
	fmt.Printf("prefix sharing — ResNet-50 (%d layers), variants specialized in the last FC layer\n\n", base.NumLayers())

	profiles, err := nexus.CatalogProfiles(mdb, nexus.GTX1080Ti)
	if err != nil {
		log.Fatal(err)
	}
	baseProfile := profiles[nexus.ResNet50]
	suffixFrac := float64(base.SuffixFLOPs(base.NumLayers()-2)) / float64(base.FLOPs())

	fmt.Println("  single 1080Ti (11 GB), SLO 100ms; aggregate throughput across variants:")
	fmt.Printf("  %-10s %-22s %-22s %-10s\n", "#variants", "w/o prefix (req/s)", "w/ prefix (req/s)", "gain")
	slo := 100 * time.Millisecond
	for _, k := range []int{2, 4, 6, 8, 10} {
		sep, err := nexus.SeparateVariantsProfile(baseProfile, k)
		if err != nil {
			log.Fatal(err)
		}
		comb, err := nexus.CombinedProfile(baseProfile, suffixFrac, k)
		if err != nil {
			log.Fatal(err)
		}
		// Max throughput under the SLO: batch B with 2*l(B) <= SLO.
		_, sepTput := sep.SaturateBatch(slo)
		_, combTput := comb.SaturateBatch(slo)
		fmt.Printf("  %-10d %-22.0f %-22.0f %.2fx\n", k, sepTput, combTput, combTput/sepTput)
	}

	fmt.Println("\n  GPU memory for the variant family (weights + workspace):")
	fmt.Printf("  %-10s %-16s %-14s %-14s %-14s\n", "#variants", "w/o prefix", "1 FC suffix", "2 FC suffix", "3 FC suffix")
	for _, k := range []int{2, 4, 6, 8, 10} {
		row := fmt.Sprintf("  %-10d", k)
		sep, _ := nexus.SeparateVariantsProfile(baseProfile, k)
		row += fmt.Sprintf(" %-16s", gb(sep.MemBase))
		for fc := 1; fc <= 3; fc++ {
			frac := suffixFrac * float64(fc)
			comb, err := nexus.CombinedProfile(baseProfile, frac, k)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %-14s", gb(comb.MemBase))
		}
		fmt.Println(row)
	}
	fmt.Println("\n  (memory grows linearly with variants without sharing; with sharing the")
	fmt.Println("   prefix is resident once and each extra FC suffix costs a few megabytes)")
}

func gb(b int64) string {
	return fmt.Sprintf("%.2f GB", float64(b)/float64(1<<30))
}
