// Quickstart: serve one model under a latency SLO on a small simulated GPU
// cluster and print the serving statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"nexus"
)

func main() {
	// A 4-GPU Nexus cluster with every optimization enabled.
	d, err := nexus.NewDeployment(nexus.Config{
		System:   nexus.SystemNexus,
		Features: nexus.AllFeatures(),
		GPUs:     4,
		Seed:     42,
		Epoch:    10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Serve ResNet-50 at 800 req/s with a 100 ms latency SLO. The nil
	// arrival process means uniform arrivals at the expected rate.
	if err := d.AddSession(nexus.SessionSpec{
		ID:           "demo",
		ModelID:      nexus.ResNet50,
		SLO:          100 * time.Millisecond,
		ExpectedRate: 800,
	}, nil); err != nil {
		log.Fatal(err)
	}

	// Run 60 seconds of virtual time (finishes in milliseconds of real
	// time — everything runs on a discrete-event simulation clock).
	const duration = 60 * time.Second
	badRate, err := d.Run(duration)
	if err != nil {
		log.Fatal(err)
	}

	st := d.Recorder.Session("demo")
	fmt.Println("nexus quickstart — ResNet-50 @ 800 r/s, SLO 100ms, 4 GPUs")
	fmt.Printf("  requests sent:       %d\n", st.Sent)
	fmt.Printf("  served within SLO:   %d (%.2f%%)\n", st.Good(), 100*(1-badRate))
	fmt.Printf("  dropped:             %d\n", st.Dropped)
	fmt.Printf("  completed late:      %d\n", st.Missed)
	fmt.Printf("  median latency:      %v\n", st.Latency.Quantile(0.5))
	fmt.Printf("  p99 latency:         %v\n", st.Latency.Quantile(0.99))
	fmt.Printf("  goodput:             %.0f req/s\n", d.Goodput(duration))
	fmt.Printf("  GPUs in use (avg):   %.1f of %d\n", d.AvgGPUsUsed(), 4)
	if badRate <= 0.01 {
		fmt.Println("  SLO target met: >= 99% of requests within 100ms")
	} else {
		fmt.Printf("  SLO target missed: bad rate %.2f%%\n", 100*badRate)
	}
}
