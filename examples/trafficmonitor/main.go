// Traffic monitoring (Figure 8): an SSD detector feeds car make/model and
// face recognition under a single 400 ms whole-query SLO. This example
// shows (a) the query analyzer's latency split, and (b) the paper's
// throughput metric — the maximum query rate served with >= 99% of queries
// within the SLO — with and without query analysis, during rush and
// non-rush hours (§7.3.2).
//
//	go run ./examples/trafficmonitor
package main

import (
	"fmt"
	"log"
	"time"

	"nexus"
)

func maxGoodput(rush, queryAnalysis bool) float64 {
	return nexus.MaxGoodput(5, 2000, 30*time.Second, func(rate float64) (*nexus.Deployment, error) {
		features := nexus.AllFeatures()
		features.QueryAnalysis = queryAnalysis
		d, err := nexus.NewDeployment(nexus.Config{
			System:       nexus.SystemNexus,
			Features:     features,
			GPUs:         16,
			Seed:         7,
			Epoch:        10 * time.Second,
			FixedCluster: true,
		})
		if err != nil {
			return nil, err
		}
		// 20 cameras sharing the offered query rate.
		if err := nexus.DeployApp(d, nexus.AppTraffic(20, rate/20, rush)); err != nil {
			return nil, err
		}
		return d, nil
	})
}

func main() {
	fmt.Println("traffic monitoring — SSD -> {GoogLeNet-car, VGG-Face}, SLO 400ms, 16 GPUs")

	// The query analyzer's split: show how the 400ms budget is divided.
	mdb := nexus.Catalog()
	profiles, err := nexus.CatalogProfiles(mdb, nexus.GTX1080Ti)
	if err != nil {
		log.Fatal(err)
	}
	q := &nexus.Query{
		Name: "traffic", SLO: 400 * time.Millisecond,
		Root: &nexus.QueryNode{Name: "det", ModelID: nexus.SSD, Edges: []nexus.QueryEdge{
			{Gamma: 1.5, Child: &nexus.QueryNode{Name: "car", ModelID: nexus.GoogLeNetCar}},
			{Gamma: 0.5, Child: &nexus.QueryNode{Name: "face", ModelID: nexus.VGGFace}},
		}},
	}
	budgets, gpus, err := nexus.OptimizeQuery(q, 80, profiles, 5*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  query-analysis split of the 400ms SLO (80 q/s):\n")
	for _, stage := range []string{"det", "car", "face"} {
		fmt.Printf("    %-5s %v\n", stage, budgets[stage])
	}
	fmt.Printf("    estimated GPUs: %.2f\n\n", gpus)

	fmt.Println("  max query rate with >= 99% served within the 400ms SLO:")
	for _, scenario := range []struct {
		name string
		rush bool
	}{{"non-rush hour", false}, {"rush hour", true}} {
		withQA := maxGoodput(scenario.rush, true)
		withoutQA := maxGoodput(scenario.rush, false)
		fmt.Printf("    %-14s query analysis: %6.0f q/s   even split: %6.0f q/s   (%.0f%% gain)\n",
			scenario.name, withQA, withoutQA, 100*(withQA/withoutQA-1))
	}
	fmt.Println("\n  (rush hour detects more objects per frame, so each query costs more;")
	fmt.Println("   the query analyzer gives the heavyweight SSD stage most of the budget)")
}
