// Game-stream analysis (§7.3.1): per game stream, specialized LeNet digit
// recognizers and a specialized ResNet-50 icon recognizer serve under a
// tight 50 ms SLO; request rates across 20 games follow Zipf(0.9). This
// example compares the maximum sustained request rate (99% within SLO)
// across serving systems — the Figure 10 comparison.
//
//	go run ./examples/gameanalysis
package main

import (
	"fmt"
	"time"

	"nexus"
)

const (
	games = 20
	gpus  = 16
)

func maxGoodput(system nexus.System, features nexus.Features) float64 {
	return nexus.MaxGoodput(20, 100000, 20*time.Second, func(rate float64) (*nexus.Deployment, error) {
		d, err := nexus.NewDeployment(nexus.Config{
			System:       system,
			Features:     features,
			GPUs:         gpus,
			Seed:         11,
			Epoch:        10 * time.Second,
			FixedCluster: true,
		})
		if err != nil {
			return nil, err
		}
		// The offered rate counts individual DNN requests; each sampled
		// frame issues 6 digit crops + 1 icon, so frames/s = rate/7.
		if err := nexus.DeployApp(d, nexus.AppGame(games, rate/7)); err != nil {
			return nil, err
		}
		return d, nil
	})
}

func main() {
	fmt.Printf("game-stream analysis — %d games, specialized LeNet+ResNet-50, SLO 50ms, %d GPUs\n", games, gpus)
	fmt.Println("  max request rate with >= 99% within SLO:")

	systems := []struct {
		name     string
		system   nexus.System
		features nexus.Features
	}{
		{"TF Serving (baseline)", nexus.SystemTFServing, nexus.Features{}},
		{"Clipper (baseline)", nexus.SystemClipper, nexus.Features{}},
		{"Nexus (full)", nexus.SystemNexus, nexus.AllFeatures()},
	}
	results := map[string]float64{}
	for _, s := range systems {
		tput := maxGoodput(s.system, s.features)
		results[s.name] = tput
		fmt.Printf("    %-22s %8.0f req/s\n", s.name, tput)
	}
	nexusTput := results["Nexus (full)"]
	fmt.Printf("\n  Nexus vs TF Serving: %.1fx    Nexus vs Clipper: %.1fx\n",
		nexusTput/results["TF Serving (baseline)"], nexusTput/results["Clipper (baseline)"])

	// Cumulative ablation, as in the paper's Figure 10: features are
	// turned off additively left to right.
	fmt.Println("\n  cumulative ablation (features disabled additively, Figure 10):")
	f := nexus.AllFeatures()
	steps := []struct {
		name   string
		mutate func(*nexus.Features)
	}{
		{"-PB (no prefix batching)", func(f *nexus.Features) { f.PrefixBatch = false }},
		{"-SS (batch-oblivious sched)", func(f *nexus.Features) { f.Squishy = false }},
		{"-ED (lazy drop)", func(f *nexus.Features) { f.EarlyDrop = false }},
		{"-OL (no CPU/GPU overlap)", func(f *nexus.Features) { f.Overlap = false }},
	}
	for _, s := range steps {
		s.mutate(&f)
		tput := maxGoodput(nexus.SystemNexus, f)
		fmt.Printf("    %-28s %8.0f req/s (%.0f%% of full Nexus)\n", s.name, tput, 100*tput/nexusTput)
	}
}
