package nexus_test

import (
	"testing"
	"time"

	"nexus"
)

// TestQuickstartFlow exercises the README quickstart through the public
// API: build a deployment, serve a session, verify the SLO target is met.
func TestQuickstartFlow(t *testing.T) {
	d, err := nexus.NewDeployment(nexus.Config{
		System:   nexus.SystemNexus,
		Features: nexus.AllFeatures(),
		GPUs:     4,
		Seed:     42,
		Epoch:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddSession(nexus.SessionSpec{
		ID:           "demo",
		ModelID:      nexus.ResNet50,
		SLO:          100 * time.Millisecond,
		ExpectedRate: 800,
	}, nil); err != nil {
		t.Fatal(err)
	}
	bad, err := d.Run(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bad > 0.01 {
		t.Fatalf("bad rate %.4f, want <= 1%%", bad)
	}
	st := d.Recorder.Session("demo")
	if st.Sent == 0 || st.Good() == 0 {
		t.Fatal("no traffic served")
	}
}

// TestPackAndValidateAPI exercises the scheduling API directly.
func TestPackAndValidateAPI(t *testing.T) {
	mdb := nexus.Catalog()
	profiles, err := nexus.CatalogProfiles(mdb, nexus.GTX1080Ti)
	if err != nil {
		t.Fatal(err)
	}
	sessions := []nexus.Session{
		{ID: "a", ModelID: nexus.ResNet50, SLO: 100 * time.Millisecond, Rate: 500},
		{ID: "b", ModelID: nexus.GoogLeNetCar, SLO: 80 * time.Millisecond, Rate: 300},
	}
	plan, err := nexus.Pack(sessions, profiles, nexus.SchedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := nexus.ValidatePlan(plan, sessions, profiles, nexus.SchedConfig{}); err != nil {
		t.Fatal(err)
	}
	if plan.GPUCount() < 1 {
		t.Fatal("empty plan")
	}
}

// TestOptimizeQueryAPI exercises the latency-split API.
func TestOptimizeQueryAPI(t *testing.T) {
	mdb := nexus.Catalog()
	profiles, err := nexus.CatalogProfiles(mdb, nexus.GTX1080Ti)
	if err != nil {
		t.Fatal(err)
	}
	q := &nexus.Query{
		Name: "q", SLO: 400 * time.Millisecond,
		Root: &nexus.QueryNode{Name: "det", ModelID: nexus.SSD, Edges: []nexus.QueryEdge{
			{Gamma: 2, Child: &nexus.QueryNode{Name: "rec", ModelID: nexus.GoogLeNetCar}},
		}},
	}
	budgets, gpus, err := nexus.OptimizeQuery(q, 100, profiles, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if budgets["det"]+budgets["rec"] > 400*time.Millisecond {
		t.Fatalf("split %v exceeds SLO", budgets)
	}
	if gpus <= 0 {
		t.Fatalf("GPU estimate %v", gpus)
	}
}

// TestAppDeployment exercises the application suite through the facade.
func TestAppDeployment(t *testing.T) {
	d, err := nexus.NewDeployment(nexus.Config{
		System: nexus.SystemNexus, Features: nexus.AllFeatures(),
		GPUs: 8, Seed: 3, Epoch: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nexus.DeployApp(d, nexus.AppGame(5, 50)); err != nil {
		t.Fatal(err)
	}
	if err := nexus.DeployApp(d, nexus.AppDance(10)); err != nil {
		t.Fatal(err)
	}
	bad, err := d.Run(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bad > 0.05 {
		t.Fatalf("bad rate %.4f", bad)
	}
}

// TestPrefixProfilesAPI exercises the Figure 15 profile helpers.
func TestPrefixProfilesAPI(t *testing.T) {
	mdb := nexus.Catalog()
	profiles, err := nexus.CatalogProfiles(mdb, nexus.GTX1080Ti)
	if err != nil {
		t.Fatal(err)
	}
	base := profiles[nexus.ResNet50]
	comb, err := nexus.CombinedProfile(base, 0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	sep, err := nexus.SeparateVariantsProfile(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	slo := 100 * time.Millisecond
	_, combT := comb.SaturateBatch(slo)
	_, sepT := sep.SaturateBatch(slo)
	if combT <= sepT {
		t.Fatalf("prefix batching should win: combined %v <= separate %v", combT, sepT)
	}
	if comb.MemBase >= sep.MemBase {
		t.Fatal("prefix batching should use less memory")
	}
}

// TestMaxGoodputAPI smoke-tests the throughput-search helper.
func TestMaxGoodputAPI(t *testing.T) {
	got := nexus.MaxGoodput(50, 4000, 8*time.Second, func(rate float64) (*nexus.Deployment, error) {
		d, err := nexus.NewDeployment(nexus.Config{
			System: nexus.SystemNexus, Features: nexus.AllFeatures(),
			GPUs: 1, Seed: 2, Epoch: 10 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		if err := d.AddSession(nexus.SessionSpec{
			ID: "s", ModelID: nexus.GoogLeNetCar, SLO: 100 * time.Millisecond, ExpectedRate: rate,
		}, nil); err != nil {
			return nil, err
		}
		return d, nil
	})
	if got < 300 || got > 4000 {
		t.Fatalf("max goodput %v outside plausible range", got)
	}
}
